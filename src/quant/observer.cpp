#include "quant/observer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "tensor/reduce.h"
#include "util/check.h"

namespace t2c {

void EmaMinMaxObserver::observe(const Tensor& x) {
  const auto [mn, mx] = min_max(x);
  if (!initialized_) {
    min_ = mn;
    max_ = mx;
    initialized_ = true;
  } else {
    if (obs::metrics_enabled()) {
      // Relative drift of the incoming batch range against the running EMA:
      // a calibration-stability signal (large values mean the observed range
      // is still moving and the frozen scale would be stale).
      const float span = std::max(1e-12F, max_ - min_);
      const double drift =
          std::max(std::fabs(mn - min_), std::fabs(mx - max_)) / span;
      obs::metrics()
          .histogram("quant.observer.range_drift",
                     {0.001, 0.01, 0.05, 0.1, 0.5, 1.0})
          .observe(drift);
      obs::metrics().gauge("quant.observer.max_drift").set_max(drift);
      obs::metrics().counter("quant.observer.updates").add(1);
    }
    min_ = (1.0F - momentum_) * min_ + momentum_ * mn;
    max_ = (1.0F - momentum_) * max_ + momentum_ * mx;
  }
}

void EmaMinMaxObserver::reset() {
  initialized_ = false;
  min_ = max_ = 0.0F;
}

PercentileObserver::PercentileObserver(float percentile, int bins)
    : percentile_(percentile), bins_(bins) {
  check(percentile > 0.5F && percentile <= 1.0F,
        "PercentileObserver: percentile must be in (0.5, 1]");
  check(bins >= 16, "PercentileObserver: need at least 16 bins");
  hist_.assign(static_cast<std::size_t>(bins_), 0);
}

void PercentileObserver::observe(const Tensor& x) {
  const auto [mn, mx] = min_max(x);
  if (!range_set_) {
    // Fix the histogram range on first observation, padded 2x so later
    // batches with moderately larger values still land inside.
    const float pad = std::max(1e-5F, 2.0F * std::max(std::fabs(mn),
                                                      std::fabs(mx)));
    range_lo_ = -pad;
    range_hi_ = pad;
    range_set_ = true;
  }
  const float inv_w =
      static_cast<float>(bins_) / std::max(1e-12F, range_hi_ - range_lo_);
  const bool prof = obs::metrics_enabled();
  std::int64_t clipped = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    int b = static_cast<int>((x[i] - range_lo_) * inv_w);
    if (b < 0) {
      ++clipped;
      b = 0;
    } else if (b >= bins_) {
      ++clipped;
      b = bins_ - 1;
    }
    ++hist_[static_cast<std::size_t>(b)];
  }
  total_ += x.numel();
  if (prof) {
    obs::metrics().counter("quant.observer.clipped_samples").add(clipped);
    obs::metrics().counter("quant.observer.samples").add(x.numel());
  }
}

void PercentileObserver::reset() {
  std::fill(hist_.begin(), hist_.end(), 0);
  total_ = 0;
  range_set_ = false;
}

float PercentileObserver::lo() const {
  check(total_ > 0, "PercentileObserver::lo before any observation");
  const auto target = static_cast<std::int64_t>(
      (1.0 - static_cast<double>(percentile_)) * static_cast<double>(total_));
  std::int64_t acc = 0;
  const float w = (range_hi_ - range_lo_) / static_cast<float>(bins_);
  for (int b = 0; b < bins_; ++b) {
    acc += hist_[static_cast<std::size_t>(b)];
    if (acc > target) return range_lo_ + w * static_cast<float>(b);
  }
  return range_hi_;
}

float PercentileObserver::hi() const {
  check(total_ > 0, "PercentileObserver::hi before any observation");
  const auto target = static_cast<std::int64_t>(
      (1.0 - static_cast<double>(percentile_)) * static_cast<double>(total_));
  std::int64_t acc = 0;
  const float w = (range_hi_ - range_lo_) / static_cast<float>(bins_);
  for (int b = bins_ - 1; b >= 0; --b) {
    acc += hist_[static_cast<std::size_t>(b)];
    if (acc > target) return range_lo_ + w * static_cast<float>(b + 1);
  }
  return range_lo_;
}

void range_to_scale(float mn, float mx, std::int64_t qmin, std::int64_t qmax,
                    bool is_unsigned, float& scale, float& zero) {
  check(qmax > qmin, "range_to_scale: empty integer grid");
  check(std::isfinite(mn) && std::isfinite(mx),
        "range_to_scale: non-finite observed range (diverged training?)");
  if (is_unsigned) {
    // Asymmetric grid with integer zero point.
    mn = std::min(mn, 0.0F);
    mx = std::max(mx, 0.0F);
    const float span = std::max(1e-12F, mx - mn);
    scale = span / static_cast<float>(qmax - qmin);
    zero = std::nearbyintf(static_cast<float>(qmin) - mn / scale);
    zero = std::min(static_cast<float>(qmax),
                    std::max(static_cast<float>(qmin), zero));
  } else {
    const float amax = std::max({std::fabs(mn), std::fabs(mx), 1e-12F});
    scale = amax / static_cast<float>(qmax);
    zero = 0.0F;
  }
}

}  // namespace t2c
