#include "quant/qdrop.h"

namespace t2c {

QDropActivation::QDropActivation(QSpec spec, float drop_p, std::uint64_t seed)
    : MinMaxQuantizer(spec), drop_p_(drop_p), rng_(seed) {
  check(drop_p >= 0.0F && drop_p <= 1.0F, "QDrop: drop_p must be in [0,1]");
  check(spec.granularity == QGranularity::kPerTensor,
        "QDropActivation is per-tensor only");
}

Tensor QDropActivation::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (update && !frozen()) update_range(x);
  Tensor* mask = update ? &cached_inside_ : nullptr;
  Tensor fq = fake_quant(x, mask);
  if (!drop_enabled_) return fq;
  // Random pass-through: with probability drop_p the fp value survives.
  if (update) cached_drop_ = Tensor(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool keep_fp = rng_.bernoulli(drop_p_);
    if (keep_fp) fq[i] = x[i];
    if (update) cached_drop_[i] = keep_fp ? 1.0F : 0.0F;
  }
  return fq;
}

Tensor QDropActivation::backward(const Tensor& grad_out) {
  check(!cached_inside_.empty(), "QDropActivation::backward before forward");
  Tensor g(grad_out.shape());
  const bool dropped = drop_enabled_ && !cached_drop_.empty();
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    const float pass =
        dropped && cached_drop_[i] > 0.5F ? 1.0F : cached_inside_[i];
    g[i] = grad_out[i] * pass;
  }
  return g;
}

}  // namespace t2c
