#include "quant/qbase.h"

#include <cmath>
#include <map>

namespace t2c {

void QSpec::validate() const {
  check(nbits >= 2 && nbits <= 16, "QSpec: nbits must be in [2, 16]");
}

QBase::QBase(QSpec spec) : spec_(spec) {
  spec_.validate();
  qmin_ = spec_.qmin();
  qmax_ = spec_.qmax();
  scale_ = Tensor({1}, 1.0F);
  zero_ = Tensor({1}, 0.0F);
}

void QBase::collect_params(std::vector<Param*>&) {}

void QBase::scale_zero_at(std::int64_t i, std::int64_t per, float& s,
                          float& z) const {
  if (scale_.numel() == 1) {
    s = scale_[0];
    z = zero_[0];
  } else {
    const std::int64_t c = i / per;
    s = scale_[c];
    z = zero_[c];
  }
}

Tensor QBase::fake_quant(const Tensor& x, Tensor* inside_mask) const {
  Tensor out(x.shape());
  if (inside_mask != nullptr) *inside_mask = Tensor(x.shape());
  const std::int64_t per =
      scale_.numel() == 1 ? x.numel() : x.numel() / scale_.numel();
  const float fqmin = static_cast<float>(qmin_);
  const float fqmax = static_cast<float>(qmax_);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float s, z;
    scale_zero_at(i, per, s, z);
    const float q = std::nearbyintf(x[i] / s) + z;
    const bool inside = q >= fqmin && q <= fqmax;
    const float qc = std::min(fqmax, std::max(fqmin, q));
    out[i] = (qc - z) * s;
    if (inside_mask != nullptr) (*inside_mask)[i] = inside ? 1.0F : 0.0F;
  }
  return out;
}

ITensor QBase::quantize(const Tensor& x) const {
  ITensor out(x.shape());
  const std::int64_t per =
      scale_.numel() == 1 ? x.numel() : x.numel() / scale_.numel();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float s, z;
    scale_zero_at(i, per, s, z);
    const std::int64_t q =
        static_cast<std::int64_t>(std::nearbyintf(x[i] / s)) +
        static_cast<std::int64_t>(z);
    out[i] = std::min(qmax_, std::max(qmin_, q));
  }
  return out;
}

Tensor QBase::dequantize(const ITensor& q) const {
  Tensor out(q.shape());
  const std::int64_t per =
      scale_.numel() == 1 ? q.numel() : q.numel() / scale_.numel();
  for (std::int64_t i = 0; i < q.numel(); ++i) {
    float s, z;
    scale_zero_at(i, per, s, z);
    out[i] = (static_cast<float>(q[i]) - z) * s;
  }
  return out;
}

namespace {
std::map<std::string, QuantizerFactory>& quantizer_registry() {
  static std::map<std::string, QuantizerFactory> reg;
  return reg;
}
}  // namespace

void register_quantizer(const std::string& name, QuantizerFactory factory) {
  check(factory != nullptr, "register_quantizer: null factory");
  quantizer_registry()[name] = factory;
}

std::unique_ptr<QBase> make_quantizer(const std::string& name, QSpec spec) {
  ensure_builtin_quantizers();
  auto& reg = quantizer_registry();
  auto it = reg.find(name);
  if (it == reg.end()) {
    std::string known;
    for (const auto& [k, v] : reg) known += k + " ";
    fail("unknown quantizer '" + name + "'; registered: " + known);
  }
  return it->second(spec);
}

std::vector<std::string> registered_quantizers() {
  ensure_builtin_quantizers();
  std::vector<std::string> out;
  for (const auto& [k, v] : quantizer_registry()) out.push_back(k);
  return out;
}

}  // namespace t2c
