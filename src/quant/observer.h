// Range observers feeding the observer-driven quantizers (MinMax, and the
// activation side of the PTQ flows).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace t2c {

/// Exponential-moving-average min/max tracker (PyTorch-style observer).
class EmaMinMaxObserver {
 public:
  explicit EmaMinMaxObserver(float momentum = 0.1F) : momentum_(momentum) {}

  void observe(const Tensor& x);
  void reset();

  bool initialized() const { return initialized_; }
  float min() const { return min_; }
  float max() const { return max_; }

 private:
  float momentum_;
  bool initialized_ = false;
  float min_ = 0.0F;
  float max_ = 0.0F;
};

/// Histogram-based percentile observer: robust to activation outliers
/// (the paper's PTQ calibration option). Tracks a fixed-range histogram and
/// reports the p / (1-p) quantiles.
class PercentileObserver {
 public:
  explicit PercentileObserver(float percentile = 0.999F, int bins = 512);

  void observe(const Tensor& x);
  void reset();

  bool initialized() const { return total_ > 0; }
  /// Lower / upper clip values at the configured percentile.
  float lo() const;
  float hi() const;

 private:
  float percentile_;
  int bins_;
  float range_lo_ = 0.0F;
  float range_hi_ = 0.0F;
  bool range_set_ = false;
  std::vector<std::int64_t> hist_;
  std::int64_t total_ = 0;
};

/// Turns an observed (min, max) range into (scale, zero) for a grid with
/// [qmin, qmax]; symmetric grids ignore the zero point.
void range_to_scale(float mn, float mx, std::int64_t qmin, std::int64_t qmax,
                    bool is_unsigned, float& scale, float& zero);

}  // namespace t2c
