#include "quant/sawb.h"

#include <cmath>

namespace t2c {

void sawb_coefficients(int nbits, float& c1, float& c2) {
  switch (nbits) {
    case 2:
      c1 = 3.12F;
      c2 = -2.064F;
      return;
    case 3:
      c1 = 7.509F;
      c2 = -6.892F;
      return;
    case 4:
      c1 = 12.68F;
      c2 = -12.80F;
      return;
    case 5:
      c1 = 17.74F;
      c2 = -18.64F;
      return;
    default:
      // Out of the fitted range: 4-sigma clipping is a robust default.
      c1 = 4.0F;
      c2 = 0.0F;
      return;
  }
}

SAWBQuantizer::SAWBQuantizer(QSpec spec) : QBase(spec) {
  check(!spec.is_unsigned, "SAWB is a (signed) weight quantizer");
}

void SAWBQuantizer::update_scale(const Tensor& w) {
  float c1, c2;
  sawb_coefficients(spec_.nbits, c1, c2);
  const auto alpha_of = [&](const float* p, std::int64_t n) {
    double e1 = 0.0, e2 = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      e1 += std::fabs(p[i]);
      e2 += static_cast<double>(p[i]) * p[i];
    }
    e1 /= static_cast<double>(n);
    e2 /= static_cast<double>(n);
    const double a = c1 * std::sqrt(e2) + c2 * e1;
    return static_cast<float>(std::max(a, 1e-8));
  };
  if (spec_.granularity == QGranularity::kPerChannel) {
    const std::int64_t oc = w.size(0);
    const std::int64_t per = w.numel() / oc;
    if (scale_.numel() != oc) {
      scale_ = Tensor({oc}, 1.0F);
      zero_ = Tensor({oc}, 0.0F);
    }
    for (std::int64_t c = 0; c < oc; ++c) {
      scale_[c] = alpha_of(w.data() + c * per, per) /
                  static_cast<float>(qmax_);
    }
  } else {
    scale_[0] = alpha_of(w.data(), w.numel()) / static_cast<float>(qmax_);
  }
}

Tensor SAWBQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (update && !frozen()) update_scale(x);
  Tensor* mask = update ? &cached_inside_ : nullptr;
  return fake_quant(x, mask);
}

Tensor SAWBQuantizer::backward(const Tensor& grad_out) {
  check(!cached_inside_.empty(), "SAWBQuantizer::backward before forward");
  Tensor g(grad_out.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * cached_inside_[i];
  }
  return g;
}

}  // namespace t2c
