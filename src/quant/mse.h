// MSE-optimal range calibration: instead of trusting min/max (outlier
// sensitive) or a fixed percentile, search over clipping scales for the one
// minimizing the quantization mean-squared error on the observed batch —
// the calibration mode industrial toolkits expose as "MSE"/"entropy".
// Search is a simple golden-ratio-free grid over fractions of max|x|,
// which is what the toolkits do in practice.
#pragma once

#include "quant/qbase.h"

namespace t2c {

class MSEQuantizer final : public QBase {
 public:
  explicit MSEQuantizer(QSpec spec, int search_points = 24);

  Tensor forward(const Tensor& x, bool update) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "mse"; }

 private:
  /// Quantization MSE of `x` under clip value `clip`.
  double mse_at(const Tensor& x, float clip) const;

  int search_points_;
};

}  // namespace t2c
