// Quantized multi-head attention (paper §3.2.2, Fig. 4).
//
// Weights of the fused qkv / output projections are quantized via QLinear;
// the intermediate streams (q, k, v, attention probabilities, and the
// context output) each get a per-tensor activation quantizer so that every
// matmul of the deploy graph runs on integers. The training path applies
// fake-quantization to those streams with identity STE (the clip masks are
// nearly always open at 8-bit; documented simplification), so the parent's
// backward remains exact w.r.t. the cached quantized tensors.
#pragma once

#include "nn/attention.h"
#include "quant/qlayers.h"

namespace t2c {

class QMultiheadAttention final : public MultiheadAttention {
 public:
  QMultiheadAttention(std::int64_t dim, std::int64_t heads, Rng& rng,
                      const QConfig& qcfg);

  Tensor forward(const Tensor& x) override;
  void collect_local_quantizers(std::vector<QBase*>& out) override;
  std::string kind() const override { return "QMultiheadAttention"; }

  QLinear& q_qkv() { return *qkv_q_; }
  QLinear& q_proj() { return *proj_q_; }
  QBase& q_quant() { return *q_quant_; }
  QBase& k_quant() { return *k_quant_; }
  QBase& v_quant() { return *v_quant_; }
  QBase& p_quant() { return *p_quant_; }

 private:
  // Owned by the base class unique_ptrs; typed aliases for quantized access.
  QLinear* qkv_q_ = nullptr;
  QLinear* proj_q_ = nullptr;
  std::unique_ptr<QBase> q_quant_;
  std::unique_ptr<QBase> k_quant_;
  std::unique_ptr<QBase> v_quant_;
  std::unique_ptr<QBase> p_quant_;  ///< softmax probabilities (unsigned)
};

}  // namespace t2c
