#include "quant/rcf.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace t2c {

void apot_levels(int nbits, std::vector<std::int64_t>& numerators,
                 std::int64_t& denominator) {
  std::set<std::int64_t> nums;
  if (nbits == 2) {
    denominator = 1;
    nums = {0, 1};
  } else if (nbits == 3) {
    // {0, 2^-2, 2^-1, 2^0} over denominator 4.
    denominator = 4;
    nums = {0, 1, 2, 4};
  } else if (nbits == 4) {
    // Two additive PoT terms: p1 in {0, 2^0, 2^-2, 2^-4},
    // p2 in {0, 2^-1, 2^-3, 2^-5}; common denominator 32, max sum 48.
    const std::int64_t p1[] = {0, 32, 8, 2};
    const std::int64_t p2[] = {0, 16, 4, 1};
    for (auto a : p1) {
      for (auto b : p2) nums.insert(a + b);
    }
    denominator = 48;
  } else {
    // >= 5 bits: uniform grid (APoT gains vanish at higher precision).
    denominator = (std::int64_t{1} << (nbits - 1)) - 1;
    for (std::int64_t i = 0; i <= denominator; ++i) nums.insert(i);
  }
  numerators.assign(nums.begin(), nums.end());
}

RCFQuantizer::RCFQuantizer(QSpec spec) : QBase(spec) {
  check(!spec.is_unsigned, "RCF is a (signed) weight quantizer");
  check(spec.granularity == QGranularity::kPerTensor,
        "RCFQuantizer is per-tensor (alpha is a scalar parameter)");
  apot_levels(spec_.nbits, nums_, denom_);
  // Integer grid seen by the deploy path: numerators in [-D, D].
  qmin_ = -denom_;
  qmax_ = denom_;
  alpha_ = Param("rcf.alpha", {1});
  alpha_.apply_weight_decay = false;
  alpha_.value[0] = 1.0F;
}

std::int64_t RCFQuantizer::project(float u_abs) const {
  const float target = u_abs * static_cast<float>(denom_);
  // nums_ is sorted; branchless-enough binary search for nearest.
  auto it = std::lower_bound(nums_.begin(), nums_.end(),
                             static_cast<std::int64_t>(std::ceil(target)));
  std::int64_t best = nums_.back();
  float best_d = std::fabs(target - static_cast<float>(best));
  const auto consider = [&](std::vector<std::int64_t>::const_iterator c) {
    if (c == nums_.end()) return;
    const float d = std::fabs(target - static_cast<float>(*c));
    if (d < best_d) {
      best_d = d;
      best = *c;
    }
  };
  consider(it);
  if (it != nums_.begin()) consider(std::prev(it));
  return best;
}

Tensor RCFQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (!alpha_init_ && update && !frozen()) {
    float amax = 1e-8F;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      amax = std::max(amax, std::fabs(x[i]));
    }
    alpha_.value[0] = amax;
    alpha_init_ = true;
  }
  const float a = std::max(alpha_.value[0], 1e-6F);
  if (!frozen()) {
    scale_[0] = a / static_cast<float>(denom_);
    zero_[0] = 0.0F;
  }
  Tensor out(x.shape());
  if (update) {
    cached_u_ = Tensor(x.shape());
    cached_level_ = Tensor(x.shape());
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float u = x[i] / a;
    const float uc = std::min(1.0F, std::max(-1.0F, u));
    const float sign = uc < 0.0F ? -1.0F : 1.0F;
    const float level =
        sign * static_cast<float>(project(std::fabs(uc))) /
        static_cast<float>(denom_);
    out[i] = a * level;
    if (update) {
      cached_u_[i] = u;
      cached_level_[i] = level;
    }
  }
  return out;
}

Tensor RCFQuantizer::backward(const Tensor& grad_out) {
  check(!cached_u_.empty(), "RCFQuantizer::backward before forward");
  Tensor g(grad_out.shape());
  double ga = 0.0;
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    const float u = cached_u_[i];
    const bool inside = u > -1.0F && u < 1.0F;
    g[i] = inside ? grad_out[i] : 0.0F;
    // y = alpha * P(clip(u)); dy/dalpha = P(u) - u (inside, STE on P) or
    // sign(u) (clipped region).
    const float d = inside ? (cached_level_[i] - u)
                           : (u <= -1.0F ? -1.0F : 1.0F);
    ga += static_cast<double>(grad_out[i]) * d;
  }
  alpha_.grad[0] += static_cast<float>(ga);
  return g;
}

void RCFQuantizer::collect_params(std::vector<Param*>& out) {
  out.push_back(&alpha_);
}

ITensor RCFQuantizer::quantize(const Tensor& x) const {
  const float a = std::max(alpha_.value[0], 1e-6F);
  ITensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float u = x[i] / a;
    const float uc = std::min(1.0F, std::max(-1.0F, u));
    const std::int64_t m = project(std::fabs(uc));
    out[i] = uc < 0.0F ? -m : m;
  }
  return out;
}

}  // namespace t2c
