// QDrop (Wei et al., 2022) — the activation-side mechanism: during PTQ
// reconstruction, each activation element is quantized only with
// probability p (default 0.5) and passed through at full precision
// otherwise. Randomly "dropping" quantization flattens the loss landscape
// w.r.t. activation perturbation and is the method behind the paper's
// Table 1 Torch2Chip rows. The block-reconstruction driver lives in
// quant/ptq.h; at deployment the drop is disabled and the quantizer
// behaves as a frozen MinMax activation quantizer.
#pragma once

#include "quant/minmax.h"
#include "util/rng.h"

namespace t2c {

class QDropActivation final : public MinMaxQuantizer {
 public:
  explicit QDropActivation(QSpec spec, float drop_p = 0.5F,
                           std::uint64_t seed = 0xD20Fu);

  Tensor forward(const Tensor& x, bool update) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "qdrop"; }

  /// Enables/disables the random drop (enabled only during reconstruction).
  void set_drop_enabled(bool on) { drop_enabled_ = on; }
  bool drop_enabled() const { return drop_enabled_; }
  float drop_p() const { return drop_p_; }

 private:
  float drop_p_;
  bool drop_enabled_ = false;
  Rng rng_;
  Tensor cached_drop_;  ///< 1 where the element kept full precision
};

}  // namespace t2c
