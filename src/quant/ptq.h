// Post-training quantization drivers.
//
//  * calibrate()            — streams calibration batches through the model
//                             in kCalibrate mode so every observer settles,
//                             then freezes all quantizers (MinMax PTQ — the
//                             "OpenVINO" baseline of Table 1).
//  * reconstruct_adaround() — AdaRound layer-wise reconstruction (Nagel et
//                             al.): optimizes the learned rounding of each
//                             QLayer against its fp32 output with the
//                             annealed rounding regularizer (the "AIMET"
//                             baseline of Table 1).
//  * reconstruct_qdrop()    — same engine with QDrop activation dropping
//                             enabled (Wei et al.) — the Torch2Chip rows of
//                             Table 1.
#pragma once

#include <cstdint>

#include "data/loader.h"
#include "nn/module.h"
#include "nn/sequential.h"

namespace t2c {

/// Runs `batches` calibration batches through the model with observers
/// live, then freezes every quantizer.
void calibrate(Module& model, DataLoader& loader, std::int64_t batches);

struct ReconstructConfig {
  std::int64_t calib_batches = 4;   ///< batches used to gather layer inputs
  int iters = 200;                  ///< Adam steps per layer
  float lr = 1e-2F;                 ///< Adam lr on the rounding variables
  float reg_lambda = 0.01F;         ///< rounding-regularizer weight
  float beta_start = 20.0F;         ///< annealed regularizer exponent
  float beta_end = 2.0F;
  /// Fraction of iters before the regularizer turns on (warmup phase
  /// optimizes pure reconstruction MSE, as in the AdaRound paper).
  float reg_warmup = 0.2F;
  bool qdrop = false;               ///< enable QDrop activation dropping
};

/// AdaRound-style layer-wise reconstruction over every QLayer whose weight
/// quantizer is an AdaRoundQuantizer. Requires observers to be calibrated
/// first (call calibrate()). Returns the total final reconstruction MSE.
double reconstruct_adaround(Module& model, DataLoader& loader,
                            const ReconstructConfig& cfg);

/// Convenience wrapper: ReconstructConfig with qdrop = true.
double reconstruct_qdrop(Module& model, DataLoader& loader,
                         ReconstructConfig cfg = {});

/// BRECQ-style block-granular reconstruction (Li et al., 2021): residual
/// blocks are optimized *jointly* against their fp32 block output (layers
/// outside any block fall back to layer-wise units). Cross-layer
/// dependencies inside a block are what layer-wise AdaRound misses; block
/// granularity recovers them at the same calibration cost.
double reconstruct_blocks(Sequential& model, DataLoader& loader,
                          const ReconstructConfig& cfg);

}  // namespace t2c
