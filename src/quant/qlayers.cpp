#include "quant/qlayers.h"

#include "tensor/elementwise.h"

namespace t2c {

std::unique_ptr<QBase> QConfig::make_weight_quantizer() const {
  QSpec spec;
  spec.nbits = wbits;
  spec.is_unsigned = false;
  spec.granularity = weight_granularity;
  // Scalar-clip algorithms are inherently per-tensor.
  if (weight_quantizer == "rcf" || weight_quantizer == "lsq" ||
      weight_quantizer == "dorefa" || weight_quantizer == "mse") {
    spec.granularity = QGranularity::kPerTensor;
  }
  return make_quantizer(weight_quantizer, spec);
}

std::unique_ptr<QBase> QConfig::make_act_quantizer() const {
  QSpec spec;
  spec.nbits = abits;
  spec.is_unsigned = act_unsigned;
  spec.granularity = QGranularity::kPerTensor;
  return make_quantizer(act_quantizer, spec);
}

void QLayer::set_mask(std::optional<Tensor> mask) {
  if (mask) {
    check(mask->same_shape(weight_param().value),
          "QLayer::set_mask: mask shape must match the weight");
  }
  mask_ = std::move(mask);
}

Tensor QLayer::masked_weight() const {
  const Param& w = const_cast<QLayer*>(this)->weight_param();
  if (!mask_) return w.value;
  return mul(w.value, *mask_);
}

const Tensor& QLayer::captured_input() const {
  check(!captured_input_.empty(), "QLayer: no captured input available");
  return captured_input_;
}

ITensor QLayer::integer_weight() const {
  const QLayer* self = this;
  return const_cast<QLayer*>(self)
      ->weight_quantizer()
      .quantize(masked_weight());
}

QConv2d::QConv2d(ConvSpec spec, bool bias, Rng& rng, const QConfig& qcfg,
                 bool quantize_input)
    : Conv2d(spec, bias, rng), wq_(qcfg.make_weight_quantizer()) {
  if (quantize_input) aq_ = qcfg.make_act_quantizer();
}

Tensor QConv2d::forward(const Tensor& x) {
  if (mode() == ExecMode::kIntInfer) return int_path_forward(x);
  const bool upd = is_training() || is_calibrating();
  if (capture_input_) captured_input_ = x;
  Tensor x_eff = aq_ ? aq_->forward(x, upd) : x;
  Tensor w_eff = wq_->forward(masked_weight(), upd);
  return run_forward(x_eff, w_eff);
}

Tensor QConv2d::backward(const Tensor& grad_out) {
  Tensor gx_eff, gw_eff;
  run_backward(grad_out, gx_eff, gw_eff);
  Tensor gw = wq_->bypassed() ? std::move(gw_eff) : wq_->backward(gw_eff);
  if (mask_) mul_(gw, *mask_);
  add_(weight_.grad, gw);
  if (aq_ == nullptr || aq_->bypassed()) return gx_eff;
  return aq_->backward(gx_eff);
}

Tensor QConv2d::int_path_forward(const Tensor& x) {
  check(aq_ != nullptr,
        "QConv2d int path requires an input activation quantizer");
  const ITensor xq = aq_->quantize(x);
  const ITensor wq_int = wq_->quantize(masked_weight());
  const ITensor acc = iconv2d_forward(xq, wq_int, nullptr, spec_);

  const float sx = aq_->scale()[0];
  const float zx = aq_->zero_point()[0];
  const std::int64_t oc = spec_.out_channels;
  const std::int64_t per_w = wq_int.numel() / oc;
  std::vector<std::int64_t> sum_w(static_cast<std::size_t>(oc), 0);
  for (std::int64_t i = 0; i < wq_int.numel(); ++i) {
    sum_w[static_cast<std::size_t>(i / per_w)] += wq_int[i];
  }
  const Tensor& sw = wq_->scale();
  Tensor out(acc.shape());
  const std::int64_t n = acc.size(0), hw = acc.size(2) * acc.size(3);
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t c = 0; c < oc; ++c) {
      const float s = (sw.numel() == 1 ? sw[0] : sw[c]) * sx;
      const float corr = zx * static_cast<float>(sum_w[static_cast<std::size_t>(c)]);
      const float b = has_bias_ ? bias_.value[c] : 0.0F;
      const std::int64_t base = (in * oc + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        out[base + i] = s * (static_cast<float>(acc[base + i]) - corr) + b;
      }
    }
  }
  return out;
}

void QConv2d::collect_local_params(std::vector<Param*>& out) {
  Conv2d::collect_local_params(out);
  wq_->collect_params(out);
  if (aq_) aq_->collect_params(out);
}

void QConv2d::collect_local_quantizers(std::vector<QBase*>& out) {
  out.push_back(wq_.get());
  if (aq_) out.push_back(aq_.get());
}

QLinear::QLinear(std::int64_t in_features, std::int64_t out_features,
                 bool bias, Rng& rng, const QConfig& qcfg, bool quantize_input)
    : Linear(in_features, out_features, bias, rng),
      wq_(qcfg.make_weight_quantizer()) {
  if (quantize_input) aq_ = qcfg.make_act_quantizer();
}

Tensor QLinear::forward(const Tensor& x) {
  if (mode() == ExecMode::kIntInfer) return int_path_forward(x);
  const bool upd = is_training() || is_calibrating();
  if (capture_input_) captured_input_ = x;
  Tensor x_eff = aq_ ? aq_->forward(x, upd) : x;
  Tensor w_eff = wq_->forward(masked_weight(), upd);
  return run_forward(x_eff, w_eff);
}

Tensor QLinear::backward(const Tensor& grad_out) {
  Tensor gx_eff, gw_eff;
  run_backward(grad_out, gx_eff, gw_eff);
  Tensor gw = wq_->bypassed() ? std::move(gw_eff) : wq_->backward(gw_eff);
  if (mask_) mul_(gw, *mask_);
  add_(weight_.grad, gw);
  if (aq_ == nullptr || aq_->bypassed()) return gx_eff;
  return aq_->backward(gx_eff);
}

Tensor QLinear::int_path_forward(const Tensor& x) {
  check(aq_ != nullptr,
        "QLinear int path requires an input activation quantizer");
  const ITensor xq = aq_->quantize(x);
  const ITensor wq_int = wq_->quantize(masked_weight());
  const std::int64_t rows = x.numel() / in_;
  ITensor xrows = xq.reshaped({rows, in_});
  // acc[r, oc] = sum_k x[r,k] * w[oc,k]
  Tensor out_rows({rows, out_});
  const float sx = aq_->scale()[0];
  const float zx = aq_->zero_point()[0];
  const Tensor& sw = wq_->scale();
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t* px = xrows.data() + r * in_;
    for (std::int64_t c = 0; c < out_; ++c) {
      const std::int64_t* pw = wq_int.data() + c * in_;
      std::int64_t acc = 0, sum_w = 0;
      for (std::int64_t k = 0; k < in_; ++k) {
        acc += px[k] * pw[k];
        sum_w += pw[k];
      }
      const float s = (sw.numel() == 1 ? sw[0] : sw[c]) * sx;
      const float b = has_bias_ ? bias_.value[c] : 0.0F;
      out_rows[r * out_ + c] =
          s * (static_cast<float>(acc) - zx * static_cast<float>(sum_w)) + b;
    }
  }
  Shape out_shape = x.shape();
  out_shape.back() = out_;
  out_rows.reshape(std::move(out_shape));
  return out_rows;
}

void QLinear::collect_local_params(std::vector<Param*>& out) {
  Linear::collect_local_params(out);
  wq_->collect_params(out);
  if (aq_) aq_->collect_params(out);
}

void QLinear::collect_local_quantizers(std::vector<QBase*>& out) {
  out.push_back(wq_.get());
  if (aq_) out.push_back(aq_.get());
}

namespace {
void collect_qlayers_rec(Module& m, std::vector<QLayer*>& out) {
  if (auto* q = dynamic_cast<QLayer*>(&m)) out.push_back(q);
  std::vector<Module*> kids;
  m.collect_children(kids);
  for (Module* k : kids) collect_qlayers_rec(*k, out);
}
}  // namespace

std::vector<QLayer*> collect_qlayers(Module& root) {
  std::vector<QLayer*> out;
  collect_qlayers_rec(root, out);
  return out;
}

namespace {
void collect_quantizers_rec(Module& m, std::vector<QBase*>& out) {
  m.collect_local_quantizers(out);
  std::vector<Module*> kids;
  m.collect_children(kids);
  for (Module* k : kids) collect_quantizers_rec(*k, out);
}
}  // namespace

std::vector<QBase*> collect_all_quantizers(Module& root) {
  std::vector<QBase*> out;
  collect_quantizers_rec(root, out);
  return out;
}

void freeze_quantizers(Module& root) {
  for (QBase* q : collect_all_quantizers(root)) q->freeze();
}

}  // namespace t2c
