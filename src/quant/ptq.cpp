#include "quant/ptq.h"

#include <cmath>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "quant/adaround.h"
#include "quant/qdrop.h"
#include "quant/qlayers.h"
#include "tensor/elementwise.h"

namespace t2c {

void calibrate(Module& model, DataLoader& loader, std::int64_t batches) {
  model.set_mode(ExecMode::kCalibrate);
  loader.start_epoch();
  const std::int64_t n = std::min(batches, loader.batches_per_epoch());
  check(n > 0, "calibrate: no calibration batches available");
  for (std::int64_t b = 0; b < n; ++b) {
    (void)model.forward(loader.batch(b).images);
  }
  freeze_quantizers(model);
  model.set_mode(ExecMode::kEval);
}

double reconstruct_adaround(Module& model, DataLoader& loader,
                            const ReconstructConfig& cfg) {
  auto qlayers = collect_qlayers(model);
  check(!qlayers.empty(), "reconstruct_adaround: model has no QLayers");

  model.set_mode(ExecMode::kEval);
  double total_mse = 0.0;
  Rng rng(0xADA0);

  for (QLayer* layer : qlayers) {
    auto* ada = dynamic_cast<AdaRoundQuantizer*>(&layer->weight_quantizer());
    if (ada == nullptr) continue;

    // ---- 1. gather this layer's inputs under the (partially hardened)
    //         quantized model ----
    layer->set_capture_input(true);
    std::vector<Tensor> captured;
    loader.start_epoch();
    const std::int64_t nb =
        std::min(cfg.calib_batches, loader.batches_per_epoch());
    for (std::int64_t b = 0; b < nb; ++b) {
      (void)model.forward(loader.batch(b).images);
      captured.push_back(layer->captured_input());
    }
    layer->set_capture_input(false);
    Tensor inputs = cat0(captured);

    // ---- 2. fp32 reference output of this layer on those inputs ----
    Module& mod = layer->as_module();
    QBase* aq = layer->act_quantizer();
    ada->set_bypass(true);
    if (aq != nullptr) aq->set_bypass(true);
    Tensor fp_out = mod.forward(inputs);
    ada->set_bypass(false);
    if (aq != nullptr) aq->set_bypass(false);

    // ---- 3. optimize the rounding variables ----
    auto* drop = dynamic_cast<QDropActivation*>(aq);
    if (drop != nullptr) drop->set_drop_enabled(cfg.qdrop);

    std::vector<Param*> vparams{&ada->v()};
    Adam opt(vparams, cfg.lr);
    mod.set_mode(ExecMode::kTrain);
    MSELoss mse;
    const std::int64_t mb = std::min<std::int64_t>(16, inputs.size(0));
    double last_loss = 0.0;
    for (int it = 0; it < cfg.iters; ++it) {
      // A fresh random minibatch per step, with the matching fp target.
      const std::int64_t n = inputs.size(0);
      Shape s = inputs.shape();
      s[0] = mb;
      Tensor xb(s);
      Shape so = fp_out.shape();
      so[0] = mb;
      Tensor yb(so);
      for (std::int64_t i = 0; i < mb; ++i) {
        const int src = rng.randint(0, static_cast<int>(n) - 1);
        xb.set0(i, inputs.select0(src));
        yb.set0(i, fp_out.select0(src));
      }
      mod.zero_grad();
      Tensor out = mod.forward(xb);
      last_loss = mse.forward(out, yb);
      (void)mod.backward(mse.backward());
      const float progress = static_cast<float>(it) /
                             static_cast<float>(std::max(1, cfg.iters - 1));
      if (progress >= cfg.reg_warmup) {
        const float t = (progress - cfg.reg_warmup) /
                        std::max(1e-6F, 1.0F - cfg.reg_warmup);
        const float beta =
            cfg.beta_end + (cfg.beta_start - cfg.beta_end) * (1.0F - t);
        (void)ada->accumulate_reg_grad(cfg.reg_lambda, beta);
      }
      opt.step();
    }
    total_mse += last_loss;

    // ---- 4. harden and restore ----
    ada->harden();
    if (drop != nullptr) drop->set_drop_enabled(false);
    mod.set_mode(ExecMode::kEval);
  }
  model.set_mode(ExecMode::kEval);
  return total_mse;
}

double reconstruct_qdrop(Module& model, DataLoader& loader,
                         ReconstructConfig cfg) {
  cfg.qdrop = true;
  return reconstruct_adaround(model, loader, cfg);
}

namespace {

/// One reconstruction unit: a module plus the quantizers living inside it.
double reconstruct_unit(Module& unit, Sequential& model, DataLoader& loader,
                        const ReconstructConfig& cfg, Rng& rng) {
  auto unit_layers = collect_qlayers(unit);
  std::vector<AdaRoundQuantizer*> adas;
  std::vector<QDropActivation*> drops;
  for (QLayer* l : unit_layers) {
    if (auto* a = dynamic_cast<AdaRoundQuantizer*>(&l->weight_quantizer())) {
      adas.push_back(a);
    }
    if (auto* d = dynamic_cast<QDropActivation*>(l->act_quantizer())) {
      drops.push_back(d);
    }
  }
  if (adas.empty() || unit_layers.empty()) return 0.0;

  // 1. Gather the unit's raw inputs under the partially-hardened model.
  QLayer* probe = unit_layers.front();
  probe->set_capture_input(true);
  std::vector<Tensor> captured;
  loader.start_epoch();
  const std::int64_t nb =
      std::min(cfg.calib_batches, loader.batches_per_epoch());
  for (std::int64_t b = 0; b < nb; ++b) {
    (void)model.forward(loader.batch(b).images);
    captured.push_back(probe->captured_input());
  }
  probe->set_capture_input(false);
  Tensor inputs = cat0(captured);

  // 2. fp32 reference: bypass every quantizer inside the unit.
  auto unit_quants = collect_all_quantizers(unit);
  for (QBase* q : unit_quants) q->set_bypass(true);
  Tensor fp_out = unit.forward(inputs);
  for (QBase* q : unit_quants) q->set_bypass(false);

  // 3. Joint optimization of every rounding variable in the unit.
  for (QDropActivation* d : drops) d->set_drop_enabled(cfg.qdrop);
  std::vector<Param*> vparams;
  for (AdaRoundQuantizer* a : adas) vparams.push_back(&a->v());
  Adam opt(vparams, cfg.lr);
  unit.set_mode(ExecMode::kTrain);
  MSELoss mse;
  const std::int64_t mb = std::min<std::int64_t>(16, inputs.size(0));
  double last_loss = 0.0;
  for (int it = 0; it < cfg.iters; ++it) {
    const std::int64_t n = inputs.size(0);
    Shape s = inputs.shape();
    s[0] = mb;
    Tensor xb(s);
    Shape so = fp_out.shape();
    so[0] = mb;
    Tensor yb(so);
    for (std::int64_t i = 0; i < mb; ++i) {
      const int src = rng.randint(0, static_cast<int>(n) - 1);
      xb.set0(i, inputs.select0(src));
      yb.set0(i, fp_out.select0(src));
    }
    unit.zero_grad();
    Tensor out = unit.forward(xb);
    last_loss = mse.forward(out, yb);
    (void)unit.backward(mse.backward());
    const float progress =
        static_cast<float>(it) / static_cast<float>(std::max(1, cfg.iters - 1));
    if (progress >= cfg.reg_warmup) {
      const float t = (progress - cfg.reg_warmup) /
                      std::max(1e-6F, 1.0F - cfg.reg_warmup);
      const float beta =
          cfg.beta_end + (cfg.beta_start - cfg.beta_end) * (1.0F - t);
      for (AdaRoundQuantizer* a : adas) {
        (void)a->accumulate_reg_grad(cfg.reg_lambda, beta);
      }
    }
    opt.step();
  }

  for (AdaRoundQuantizer* a : adas) a->harden();
  for (QDropActivation* d : drops) d->set_drop_enabled(false);
  unit.set_mode(ExecMode::kEval);
  return last_loss;
}

}  // namespace

double reconstruct_blocks(Sequential& model, DataLoader& loader,
                          const ReconstructConfig& cfg) {
  model.set_mode(ExecMode::kEval);
  Rng rng(0xB1EC);
  double total = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    Module& child = model.child(i);
    if (dynamic_cast<ResidualBlock*>(&child) != nullptr ||
        dynamic_cast<QLayer*>(&child) != nullptr) {
      total += reconstruct_unit(child, model, loader, cfg, rng);
    }
  }
  model.set_mode(ExecMode::kEval);
  return total;
}

}  // namespace t2c
