#include "quant/dorefa.h"

#include <cmath>

namespace t2c {

DoReFaQuantizer::DoReFaQuantizer(QSpec spec) : QBase(spec) {
  check(!spec.is_unsigned, "DoReFa here is a (signed) weight quantizer");
  check(spec.granularity == QGranularity::kPerTensor,
        "DoReFaQuantizer is per-tensor (normalized by the global max)");
}

Tensor DoReFaQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (update && !frozen()) {
    float mx = 1e-8F;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      mx = std::max(mx, std::fabs(std::tanh(x[i])));
    }
    tanh_max_ = mx;
    // u = tanh(w)/tanh_max in [-1, 1]; integers q = round(u * qmax), so the
    // dequantization scale is tanh_max / qmax.
    scale_[0] = tanh_max_ / static_cast<float>(qmax_);
    zero_[0] = 0.0F;
  }
  Tensor out(x.shape());
  if (update) cached_dtanh_ = Tensor(x.shape());
  const float inv_m = 1.0F / tanh_max_;
  const float fqmax = static_cast<float>(qmax_);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float t = std::tanh(x[i]);
    const float u = t * inv_m;
    const float q = std::nearbyintf(u * fqmax);
    out[i] = q / fqmax * tanh_max_;
    if (update) {
      // STE through rounding; exact through tanh and the (frozen-this-
      // step) normalization.
      cached_dtanh_[i] = (1.0F - t * t);
    }
  }
  return out;
}

Tensor DoReFaQuantizer::backward(const Tensor& grad_out) {
  check(!cached_dtanh_.empty(), "DoReFaQuantizer::backward before forward");
  Tensor g(grad_out.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * cached_dtanh_[i];
  }
  return g;
}

ITensor DoReFaQuantizer::quantize(const Tensor& x) const {
  ITensor out(x.shape());
  const float inv_m = 1.0F / tanh_max_;
  const float fqmax = static_cast<float>(qmax_);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float u = std::tanh(x[i]) * inv_m;
    const auto q =
        static_cast<std::int64_t>(std::nearbyintf(u * fqmax));
    out[i] = std::min(qmax_, std::max(qmin_, q));
  }
  return out;
}

}  // namespace t2c
