// MinMax quantizer: the classic observer-driven scheme (and the algorithm
// OpenVINO's default PTQ uses — it doubles as the "OpenVINO MinMax"
// comparator row in Table 1). Also provides the percentile-clipped variant
// for outlier-robust activation calibration.
#pragma once

#include "quant/observer.h"
#include "quant/qbase.h"

namespace t2c {

class MinMaxQuantizer : public QBase {
 public:
  explicit MinMaxQuantizer(QSpec spec);

  Tensor forward(const Tensor& x, bool update) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "minmax"; }

 protected:
  /// Refreshes scale_/zero_ from the observed statistics of `x`.
  virtual void update_range(const Tensor& x);

  EmaMinMaxObserver obs_;
};

/// MinMax with percentile clipping of the observed range.
class PercentileQuantizer final : public QBase {
 public:
  explicit PercentileQuantizer(QSpec spec, float percentile = 0.999F);

  Tensor forward(const Tensor& x, bool update) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "percentile"; }

 private:
  PercentileObserver obs_;
};

}  // namespace t2c
