// AdaRound — learned rounding for post-training quantization (Nagel et al.,
// 2020), the algorithm AIMET ships. Instead of nearest rounding, each weight
// learns to round up or down via a rectified-sigmoid offset h(V):
//
//   training:  Wq = floor(W/s) + h(V),  h(V) = clip(sigmoid(V)(z-g)+g, 0, 1)
//   inference: Wq = floor(W/s) + [V >= 0]           (paper Eq. 5/6)
//
// The PTQ reconstruction driver (quant/ptq.h) optimizes V per layer against
// the fp32 layer output with the annealed rounding regularizer f_reg.
// This quantizer demonstrates the paper's point that adaptive rounding
// cannot be expressed in fixed-workflow toolkits but drops cleanly into the
// Torch2Chip dual-path template.
#pragma once

#include "quant/qbase.h"

namespace t2c {

class AdaRoundQuantizer final : public QBase {
 public:
  explicit AdaRoundQuantizer(QSpec spec);

  /// Computes the base scale from `w` (symmetric min/max) and initializes V
  /// so that h(V) reproduces each weight's fractional residue (the paper's
  /// warm start). Called automatically on the first training forward.
  void initialize(const Tensor& w);
  bool initialized() const { return init_; }

  Tensor forward(const Tensor& x, bool update) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_params(std::vector<Param*>& out) override;
  ITensor quantize(const Tensor& x) const override;
  std::string name() const override { return "adaround"; }

  /// Rounding regularizer f_reg = sum(1 - |2h(V)-1|^beta); returns the value
  /// and accumulates lambda * d f_reg / dV into the V gradient.
  double accumulate_reg_grad(float lambda, float beta);

  /// Freezes the rounding decisions to hard {0,1} (end of reconstruction).
  void harden();
  bool hardened() const { return hardened_; }

  Param& v() { return v_; }

 private:
  float h_of(float v) const;
  float dh_of(float v) const;

  Param v_;              ///< continuous rounding variables, shape of W
  bool init_ = false;
  bool hardened_ = false;
  Tensor cached_floor_;  ///< floor(W/s)
};

}  // namespace t2c
