#include "quant/mse.h"

#include <cmath>

namespace t2c {

MSEQuantizer::MSEQuantizer(QSpec spec, int search_points)
    : QBase(spec), search_points_(search_points) {
  check(spec.granularity == QGranularity::kPerTensor,
        "MSEQuantizer is per-tensor only");
  check(search_points >= 4, "MSEQuantizer: need at least 4 search points");
}

double MSEQuantizer::mse_at(const Tensor& x, float clip) const {
  const float s = clip / static_cast<float>(qmax_);
  double acc = 0.0;
  const float lo = static_cast<float>(qmin_), hi = static_cast<float>(qmax_);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float q = std::nearbyintf(x[i] / s);
    q = std::min(hi, std::max(lo, q));
    const double d = static_cast<double>(x[i]) - q * s;
    acc += d * d;
  }
  return acc;
}

Tensor MSEQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (update && !frozen()) {
    float amax = 1e-8F;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      amax = std::max(amax, std::fabs(x[i]));
    }
    // Grid search over clip in [0.3, 1.0] * amax — tighter clips trade
    // outlier error for resolution everywhere else.
    float best_clip = amax;
    double best = mse_at(x, amax);
    for (int p = 1; p < search_points_; ++p) {
      const float frac = 0.3F + 0.7F * static_cast<float>(p) /
                                    static_cast<float>(search_points_ - 1);
      const float clip = amax * frac;
      const double e = mse_at(x, clip);
      if (e < best) {
        best = e;
        best_clip = clip;
      }
    }
    scale_[0] = best_clip / static_cast<float>(qmax_);
    zero_[0] = 0.0F;
  }
  Tensor* mask = update ? &cached_inside_ : nullptr;
  return fake_quant(x, mask);
}

Tensor MSEQuantizer::backward(const Tensor& grad_out) {
  check(!cached_inside_.empty(), "MSEQuantizer::backward before forward");
  Tensor g(grad_out.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * cached_inside_[i];
  }
  return g;
}

}  // namespace t2c
