// DoReFa weight quantization (Zhou et al., 2016) — the earliest of the
// paper's cited low-bit training schemes, included as a baseline: weights
// are squashed with tanh, normalized to [-1, 1] by the running maximum,
// and uniformly quantized there. The normalization makes the quantizer
// scale data-dependent but bounded, which is why DoReFa tolerated very low
// precision long before learned-clipping methods.
#pragma once

#include "quant/qbase.h"

namespace t2c {

class DoReFaQuantizer final : public QBase {
 public:
  explicit DoReFaQuantizer(QSpec spec);

  Tensor forward(const Tensor& x, bool update) override;
  Tensor backward(const Tensor& grad_out) override;
  ITensor quantize(const Tensor& x) const override;
  std::string name() const override { return "dorefa"; }

 private:
  /// max |tanh(w)| of the most recent update forward.
  float tanh_max_ = 1.0F;
  Tensor cached_dtanh_;  ///< d tanh(w) / dw * (1 / tanh_max)
};

}  // namespace t2c
