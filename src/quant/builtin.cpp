// Registration of the built-in quantizer zoo. Kept in one translation unit
// so that static-library linking never drops a registration.
#include "quant/adaround.h"
#include "quant/dorefa.h"
#include "quant/lsq.h"
#include "quant/minmax.h"
#include "quant/mse.h"
#include "quant/pact.h"
#include "quant/qbase.h"
#include "quant/qdrop.h"
#include "quant/rcf.h"
#include "quant/sawb.h"

namespace t2c {

namespace {

template <typename Q>
std::unique_ptr<QBase> make(QSpec spec) {
  return std::make_unique<Q>(spec);
}

}  // namespace

void ensure_builtin_quantizers() {
  static const bool done = [] {
    register_quantizer("minmax", &make<MinMaxQuantizer>);
    register_quantizer("percentile", &make<PercentileQuantizer>);
    register_quantizer("sawb", &make<SAWBQuantizer>);
    register_quantizer("pact", &make<PACTQuantizer>);
    register_quantizer("lsq", &make<LSQQuantizer>);
    register_quantizer("rcf", &make<RCFQuantizer>);
    register_quantizer("adaround", &make<AdaRoundQuantizer>);
    register_quantizer("dorefa", &make<DoReFaQuantizer>);
    register_quantizer("mse", &make<MSEQuantizer>);
    register_quantizer("qdrop", &make<QDropActivation>);
    return true;
  }();
  (void)done;
}

}  // namespace t2c
