// Quantized layers: the second level of the paper's hierarchy (Fig. 2).
// QConv2d / QLinear embed a weight quantizer and an (optional) input
// activation quantizer into the float layers, and add the integer-only
// verification path selected by ExecMode::kIntInfer.
//
// They also carry the optional sparsity mask (Table 3): pruned positions
// are zeroed in the effective weight before quantization, their gradients
// are suppressed, and the zeros survive into the extracted integer model.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "quant/qbase.h"

namespace t2c {

/// Declarative description of how to quantize a layer; model builders pass
/// one QConfig and get a uniformly configured network.
struct QConfig {
  std::string weight_quantizer = "minmax";
  std::string act_quantizer = "minmax";
  int wbits = 8;
  int abits = 8;
  QGranularity weight_granularity = QGranularity::kPerChannel;
  bool act_unsigned = true;  ///< activations follow a ReLU-family nonlinearity

  /// Builds the weight-side quantizer (forces per-tensor granularity for
  /// algorithms whose clip parameter is a scalar).
  std::unique_ptr<QBase> make_weight_quantizer() const;
  /// Builds the activation-side quantizer.
  std::unique_ptr<QBase> make_act_quantizer() const;
};

/// Interface shared by every quantized compute layer; the PTQ drivers, the
/// pruners and the T2C converter discover these via dynamic_cast over the
/// module tree.
class QLayer {
 public:
  virtual ~QLayer() = default;

  virtual QBase& weight_quantizer() = 0;
  virtual QBase* act_quantizer() = 0;  ///< null when input is not quantized
  virtual Param& weight_param() = 0;
  virtual Module& as_module() = 0;

  // ---- sparsity (Table 3) ----
  /// Installs a {0,1} mask of the weight shape; cleared by std::nullopt.
  void set_mask(std::optional<Tensor> mask);
  const Tensor* mask() const { return mask_ ? &*mask_ : nullptr; }
  /// Weight with the mask applied (copy).
  Tensor masked_weight() const;

  // ---- PTQ support ----
  /// When enabled, the next forward stores its raw (pre-quantizer) input.
  void set_capture_input(bool on) { capture_input_ = on; }
  const Tensor& captured_input() const;

  /// Frozen integer weights for extraction: wq.quantize(masked weight).
  ITensor integer_weight() const;

 protected:
  std::optional<Tensor> mask_;
  bool capture_input_ = false;
  Tensor captured_input_;
};

class QConv2d final : public Conv2d, public QLayer {
 public:
  /// `quantize_input` is disabled for the stem layer when the input image
  /// is consumed at full precision (or quantized by the deploy harness).
  QConv2d(ConvSpec spec, bool bias, Rng& rng, const QConfig& qcfg,
          bool quantize_input = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_local_params(std::vector<Param*>& out) override;
  std::string kind() const override { return "QConv2d"; }

  QBase& weight_quantizer() override { return *wq_; }
  QBase* act_quantizer() override { return aq_.get(); }
  Param& weight_param() override { return weight_; }
  Module& as_module() override { return *this; }
  void collect_local_quantizers(std::vector<QBase*>& out) override;

  /// Float result of the integer verification path (dual-path check).
  Tensor int_path_forward(const Tensor& x);

 private:
  std::unique_ptr<QBase> wq_;
  std::unique_ptr<QBase> aq_;
};

class QLinear final : public Linear, public QLayer {
 public:
  QLinear(std::int64_t in_features, std::int64_t out_features, bool bias,
          Rng& rng, const QConfig& qcfg, bool quantize_input = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_local_params(std::vector<Param*>& out) override;
  std::string kind() const override { return "QLinear"; }

  QBase& weight_quantizer() override { return *wq_; }
  QBase* act_quantizer() override { return aq_.get(); }
  Param& weight_param() override { return weight_; }
  Module& as_module() override { return *this; }
  void collect_local_quantizers(std::vector<QBase*>& out) override;

  Tensor int_path_forward(const Tensor& x);

 private:
  std::unique_ptr<QBase> wq_;
  std::unique_ptr<QBase> aq_;
};

/// Depth-first collection of every QLayer under `root` (includes root).
std::vector<QLayer*> collect_qlayers(Module& root);

/// Every quantizer hosted anywhere in the subtree (layers + attention).
std::vector<QBase*> collect_all_quantizers(Module& root);

/// Freezes every quantizer under `root` (ends calibration).
void freeze_quantizers(Module& root);

}  // namespace t2c
