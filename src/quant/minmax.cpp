#include "quant/minmax.h"

#include "tensor/reduce.h"

namespace t2c {

MinMaxQuantizer::MinMaxQuantizer(QSpec spec) : QBase(spec) {}

void MinMaxQuantizer::update_range(const Tensor& x) {
  if (spec_.granularity == QGranularity::kPerChannel) {
    // Per-channel (weights): recompute directly from the current tensor.
    Tensor mn, mx;
    per_channel_min_max(x, mn, mx);
    const std::int64_t oc = mn.numel();
    if (scale_.numel() != oc) {
      scale_ = Tensor({oc}, 1.0F);
      zero_ = Tensor({oc}, 0.0F);
    }
    for (std::int64_t c = 0; c < oc; ++c) {
      float s, z;
      range_to_scale(mn[c], mx[c], qmin_, qmax_, spec_.is_unsigned, s, z);
      scale_[c] = s;
      zero_[c] = z;
    }
  } else {
    obs_.observe(x);
    float s, z;
    range_to_scale(obs_.min(), obs_.max(), qmin_, qmax_, spec_.is_unsigned, s,
                   z);
    scale_[0] = s;
    zero_[0] = z;
  }
}

Tensor MinMaxQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (update && !frozen()) update_range(x);
  Tensor* mask = update ? &cached_inside_ : nullptr;
  return fake_quant(x, mask);
}

Tensor MinMaxQuantizer::backward(const Tensor& grad_out) {
  check(!cached_inside_.empty(), "MinMaxQuantizer::backward before forward");
  Tensor g(grad_out.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * cached_inside_[i];
  }
  return g;
}

PercentileQuantizer::PercentileQuantizer(QSpec spec, float percentile)
    : QBase(spec), obs_(percentile) {
  check(spec.granularity == QGranularity::kPerTensor,
        "PercentileQuantizer is per-tensor only");
}

Tensor PercentileQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (update && !frozen()) {
    obs_.observe(x);
    float s, z;
    range_to_scale(obs_.lo(), obs_.hi(), qmin_, qmax_, spec_.is_unsigned, s,
                   z);
    scale_[0] = s;
    zero_[0] = z;
  }
  Tensor* mask = update ? &cached_inside_ : nullptr;
  return fake_quant(x, mask);
}

Tensor PercentileQuantizer::backward(const Tensor& grad_out) {
  check(!cached_inside_.empty(),
        "PercentileQuantizer::backward before forward");
  Tensor g(grad_out.shape());
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * cached_inside_[i];
  }
  return g;
}

}  // namespace t2c
