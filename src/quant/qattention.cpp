#include "quant/qattention.h"

#include "nn/activations.h"
#include "tensor/elementwise.h"
#include "tensor/matmul.h"

namespace t2c {

QMultiheadAttention::QMultiheadAttention(std::int64_t dim, std::int64_t heads,
                                         Rng& rng, const QConfig& qcfg)
    : MultiheadAttention(dim, heads, rng) {
  // Replace the float projections with quantized ones. The attention input
  // is LayerNorm output (signed), so the qkv input quantizer is signed.
  QConfig signed_cfg = qcfg;
  signed_cfg.act_unsigned = false;
  // PACT requires unsigned activations; signed internals fall back to
  // minmax observers, matching the original toolkit's ViT recipe.
  if (signed_cfg.act_quantizer == "pact") signed_cfg.act_quantizer = "minmax";
  qkv_ = std::make_unique<QLinear>(dim, 3 * dim, /*bias=*/true, rng,
                                   signed_cfg);
  qkv_->label = "attn.qkv";
  proj_ = std::make_unique<QLinear>(dim, dim, /*bias=*/true, rng, signed_cfg);
  proj_->label = "attn.proj";
  qkv_q_ = static_cast<QLinear*>(qkv_.get());
  proj_q_ = static_cast<QLinear*>(proj_.get());

  QSpec sspec;
  sspec.nbits = qcfg.abits;
  sspec.is_unsigned = false;
  q_quant_ = make_quantizer("minmax", sspec);
  k_quant_ = make_quantizer("minmax", sspec);
  v_quant_ = make_quantizer("minmax", sspec);
  QSpec pspec;
  pspec.nbits = qcfg.abits;
  pspec.is_unsigned = true;  // probabilities live in [0, 1]
  p_quant_ = make_quantizer("minmax", pspec);
}

Tensor QMultiheadAttention::forward(const Tensor& x) {
  check(x.rank() == 3 && x.size(2) == dim_,
        "QMultiheadAttention expects [N,T,D]");
  const bool upd = is_training() || is_calibrating();
  Tensor qkv = qkv_->forward(x);
  Tensor q = q_quant_->forward(split_heads(qkv, 0, heads_), upd);
  Tensor k = k_quant_->forward(split_heads(qkv, 1, heads_), upd);
  Tensor v = v_quant_->forward(split_heads(qkv, 2, heads_), upd);

  Tensor logits = bmm(q, k, false, true);
  mul_scalar_(logits, scale_);
  Tensor p = p_quant_->forward(softmax_lastdim(logits), upd);
  Tensor ctx = bmm(p, v);
  if (is_training()) {
    // Cache the quantized streams: the parent backward then differentiates
    // the exact computation the forward performed (identity STE through the
    // stream quantizers).
    cached_q_ = std::move(q);
    cached_k_ = std::move(k);
    cached_v_ = std::move(v);
    cached_p_ = p;
  }
  Tensor merged = merge_heads(ctx, heads_);
  return proj_->forward(merged);
}

void QMultiheadAttention::collect_local_quantizers(std::vector<QBase*>& out) {
  out.push_back(q_quant_.get());
  out.push_back(k_quant_.get());
  out.push_back(v_quant_.get());
  out.push_back(p_quant_.get());
}

}  // namespace t2c
