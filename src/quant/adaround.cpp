#include "quant/adaround.h"

#include <cmath>

#include "tensor/reduce.h"
#include "quant/observer.h"

namespace t2c {

namespace {
constexpr float kZeta = 1.1F;
constexpr float kGamma = -0.1F;

float sigmoid(float v) { return 1.0F / (1.0F + std::exp(-v)); }
}  // namespace

AdaRoundQuantizer::AdaRoundQuantizer(QSpec spec) : QBase(spec) {
  check(!spec.is_unsigned, "AdaRound is a (signed) weight quantizer");
}

float AdaRoundQuantizer::h_of(float v) const {
  const float h = sigmoid(v) * (kZeta - kGamma) + kGamma;
  return std::min(1.0F, std::max(0.0F, h));
}

float AdaRoundQuantizer::dh_of(float v) const {
  const float raw = sigmoid(v) * (kZeta - kGamma) + kGamma;
  if (raw <= 0.0F || raw >= 1.0F) return 0.0F;
  const float s = sigmoid(v);
  return (kZeta - kGamma) * s * (1.0F - s);
}

void AdaRoundQuantizer::initialize(const Tensor& w) {
  // Base scale: symmetric min/max, per tensor or per channel.
  if (spec_.granularity == QGranularity::kPerChannel) {
    Tensor mn, mx;
    per_channel_min_max(w, mn, mx);
    const std::int64_t oc = mn.numel();
    scale_ = Tensor({oc}, 1.0F);
    zero_ = Tensor({oc}, 0.0F);
    for (std::int64_t c = 0; c < oc; ++c) {
      float s, z;
      range_to_scale(mn[c], mx[c], qmin_, qmax_, false, s, z);
      scale_[c] = s;
    }
  } else {
    const auto [mn, mx] = min_max(w);
    float s, z;
    range_to_scale(mn, mx, qmin_, qmax_, false, s, z);
    scale_[0] = s;
  }
  // Warm-start V so that h(V) equals the fractional residue of each weight.
  v_ = Param("adaround.v", w.shape());
  v_.apply_weight_decay = false;
  const std::int64_t per =
      scale_.numel() == 1 ? w.numel() : w.numel() / scale_.numel();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    float s, z;
    scale_zero_at(i, per, s, z);
    const float r = w[i] / s - std::floor(w[i] / s);
    const float p =
        std::min(0.999F, std::max(0.001F, (r - kGamma) / (kZeta - kGamma)));
    v_.value[i] = std::log(p / (1.0F - p));
  }
  init_ = true;
}

Tensor AdaRoundQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (!init_) initialize(x);
  check(v_.value.same_shape(x), "AdaRound: tensor shape changed after init");
  Tensor out(x.shape());
  const std::int64_t per =
      scale_.numel() == 1 ? x.numel() : x.numel() / scale_.numel();
  if (update) {
    cached_inside_ = Tensor(x.shape());
    cached_floor_ = Tensor(x.shape());
  }
  const float lo = static_cast<float>(qmin_);
  const float hi = static_cast<float>(qmax_);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float s, z;
    scale_zero_at(i, per, s, z);
    const float fl = std::floor(x[i] / s);
    const float offset =
        hardened_ ? (v_.value[i] >= 0.0F ? 1.0F : 0.0F) : h_of(v_.value[i]);
    float q = fl + offset;
    const bool inside = q >= lo && q <= hi;
    q = std::min(hi, std::max(lo, q));
    out[i] = q * s;
    if (update) {
      cached_inside_[i] = inside ? 1.0F : 0.0F;
      cached_floor_[i] = fl;
    }
  }
  return out;
}

Tensor AdaRoundQuantizer::backward(const Tensor& grad_out) {
  check(!cached_inside_.empty(), "AdaRound::backward before forward");
  Tensor g(grad_out.shape());
  const std::int64_t per =
      scale_.numel() == 1 ? grad_out.numel()
                          : grad_out.numel() / scale_.numel();
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    const float inside = cached_inside_[i];
    g[i] = grad_out[i] * inside;
    if (!hardened_) {
      float s, z;
      scale_zero_at(i, per, s, z);
      v_.grad[i] += grad_out[i] * inside * s * dh_of(v_.value[i]);
    }
  }
  return g;
}

void AdaRoundQuantizer::collect_params(std::vector<Param*>& out) {
  if (init_) out.push_back(&v_);
}

double AdaRoundQuantizer::accumulate_reg_grad(float lambda, float beta) {
  check(init_, "AdaRound: accumulate_reg_grad before initialize");
  double reg = 0.0;
  for (std::int64_t i = 0; i < v_.value.numel(); ++i) {
    const float h = h_of(v_.value[i]);
    const float t = std::fabs(2.0F * h - 1.0F);
    reg += 1.0 - std::pow(t, beta);
    // d/dh (1 - |2h-1|^b) = -b * |2h-1|^(b-1) * 2 * sign(2h-1)
    const float sign = (2.0F * h - 1.0F) >= 0.0F ? 1.0F : -1.0F;
    const float dreg_dh = -beta *
                          std::pow(std::max(t, 1e-8F), beta - 1.0F) * 2.0F *
                          sign;
    v_.grad[i] += lambda * dreg_dh * dh_of(v_.value[i]);
  }
  return reg;
}

void AdaRoundQuantizer::harden() { hardened_ = true; }

ITensor AdaRoundQuantizer::quantize(const Tensor& x) const {
  check(init_, "AdaRound::quantize before initialize");
  ITensor out(x.shape());
  const std::int64_t per =
      scale_.numel() == 1 ? x.numel() : x.numel() / scale_.numel();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float s, z;
    scale_zero_at(i, per, s, z);
    const auto fl = static_cast<std::int64_t>(std::floor(x[i] / s));
    const std::int64_t up = v_.value[i] >= 0.0F ? 1 : 0;
    out[i] = std::min(qmax_, std::max(qmin_, fl + up));
  }
  return out;
}

}  // namespace t2c
