#include "quant/pact.h"

#include <cmath>

namespace t2c {

PACTQuantizer::PACTQuantizer(QSpec spec, float alpha_init, float alpha_decay)
    : QBase(spec), alpha_decay_(alpha_decay) {
  check(spec.is_unsigned, "PACT expects an unsigned activation grid");
  check(spec.granularity == QGranularity::kPerTensor,
        "PACT is per-tensor only");
  alpha_ = Param("pact.alpha", {1});
  alpha_.apply_weight_decay = false;
  alpha_.value[0] = alpha_init;
}

Tensor PACTQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  const float a = std::max(alpha_.value[0], 1e-5F);
  if (!frozen()) {
    scale_[0] = a / static_cast<float>(qmax_);
    zero_[0] = 0.0F;
  }
  const float s = scale_[0];
  Tensor out(x.shape());
  if (update) {
    cached_inside_ = Tensor(x.shape());
    cached_above_ = Tensor(x.shape());
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float clipped = std::min(a, std::max(0.0F, x[i]));
    float q = std::nearbyintf(clipped / s);
    q = std::min(static_cast<float>(qmax_), std::max(0.0F, q));
    out[i] = q * s;
    if (update) {
      cached_inside_[i] = (x[i] > 0.0F && x[i] < a) ? 1.0F : 0.0F;
      cached_above_[i] = (x[i] >= a) ? 1.0F : 0.0F;
    }
  }
  return out;
}

Tensor PACTQuantizer::backward(const Tensor& grad_out) {
  check(!cached_inside_.empty(), "PACTQuantizer::backward before forward");
  Tensor g(grad_out.shape());
  double galpha = 0.0;
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    g[i] = grad_out[i] * cached_inside_[i];
    galpha += static_cast<double>(grad_out[i]) * cached_above_[i];
  }
  alpha_.grad[0] += static_cast<float>(galpha) +
                    alpha_decay_ * alpha_.value[0];
  return g;
}

void PACTQuantizer::collect_params(std::vector<Param*>& out) {
  out.push_back(&alpha_);
}

}  // namespace t2c
