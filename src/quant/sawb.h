// SAWB — Statistics-Aware Weight Binning (Choi et al., 2019).
//
// The clipping scale is computed in closed form from the first two absolute
// moments of the weight distribution: alpha* = c1 * sqrt(E[w^2]) + c2 *
// E[|w|], with (c1, c2) fitted per bit-width. Table 2 pairs SAWB (weights)
// with PACT (activations) for the 2/2 and 4/4 ResNet-20 rows.
#pragma once

#include "quant/qbase.h"

namespace t2c {

/// Fitted (c1, c2) for a given bit-width (values from the SAWB paper's
/// regression; widths without a published pair fall back to 4-sigma).
void sawb_coefficients(int nbits, float& c1, float& c2);

class SAWBQuantizer final : public QBase {
 public:
  explicit SAWBQuantizer(QSpec spec);

  Tensor forward(const Tensor& x, bool update) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "sawb"; }

 private:
  void update_scale(const Tensor& w);
};

}  // namespace t2c
