#include "quant/lsq.h"

#include <cmath>

namespace t2c {

LSQQuantizer::LSQQuantizer(QSpec spec) : QBase(spec) {
  check(spec.granularity == QGranularity::kPerTensor,
        "LSQQuantizer is per-tensor only");
  step_ = Param("lsq.step", {1});
  step_.apply_weight_decay = false;
  step_.value[0] = 1.0F;
}

Tensor LSQQuantizer::forward(const Tensor& x, bool update) {
  if (bypassed()) return x;
  if (!step_init_ && update && !frozen()) {
    // LSQ init: s = 2 * E[|x|] / sqrt(qmax).
    double e1 = 0.0;
    for (std::int64_t i = 0; i < x.numel(); ++i) e1 += std::fabs(x[i]);
    e1 /= static_cast<double>(x.numel());
    step_.value[0] = static_cast<float>(
        std::max(1e-8, 2.0 * e1 / std::sqrt(static_cast<double>(qmax_))));
    step_init_ = true;
  }
  const float s = std::max(step_.value[0], 1e-8F);
  if (!frozen()) scale_[0] = s;
  Tensor out(x.shape());
  if (update) {
    cached_x_ = x;
    cached_q_ = Tensor(x.shape());
    cached_inside_ = Tensor(x.shape());
  }
  const float lo = static_cast<float>(qmin_);
  const float hi = static_cast<float>(qmax_);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float raw = x[i] / s;
    float q = std::nearbyintf(raw);
    const bool inside = q >= lo && q <= hi;
    q = std::min(hi, std::max(lo, q));
    out[i] = q * s;
    if (update) {
      cached_q_[i] = q;
      cached_inside_[i] = inside ? 1.0F : 0.0F;
    }
  }
  return out;
}

Tensor LSQQuantizer::backward(const Tensor& grad_out) {
  check(!cached_x_.empty(), "LSQQuantizer::backward before forward");
  const float s = std::max(step_.value[0], 1e-8F);
  const float gscale = 1.0F / std::sqrt(static_cast<float>(cached_x_.numel()) *
                                        static_cast<float>(qmax_));
  Tensor g(grad_out.shape());
  double gs = 0.0;
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    const bool inside = cached_inside_[i] > 0.5F;
    g[i] = inside ? grad_out[i] : 0.0F;
    // d(q*s)/ds: inside -> q - x/s (rounding residual); clipped -> q.
    const float d = inside ? (cached_q_[i] - cached_x_[i] / s) : cached_q_[i];
    gs += static_cast<double>(grad_out[i]) * d;
  }
  step_.grad[0] += static_cast<float>(gs) * gscale;
  return g;
}

void LSQQuantizer::collect_params(std::vector<Param*>& out) {
  out.push_back(&step_);
}

}  // namespace t2c
