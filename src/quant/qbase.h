// QBase: the bottom-level "Dual-Path" quantizer of Torch2Chip (paper §3.1).
//
// Every quantizer exposes two computation paths:
//   * training path  — forward() returns the *dequantized* (fake-quantized)
//     float tensor; straight-through gradients flow via backward(); learnable
//     quantizer parameters (PACT alpha, LSQ scale, AdaRound offsets, RCF
//     clip) accumulate gradients here.
//   * inference path — quantize() returns the raw integers; dequantize()
//     maps them back. After freeze(), scale/zero-point are immutable, and
//     the pair (quantize, scale, zero) is what the fusion/deploy stage
//     extracts.
//
// Users implementing a custom algorithm subclass QBase, implement the
// training path, and keep `scale_`/`zero_` up to date — conversion and
// parameter extraction then work automatically, which is the paper's
// central usability claim.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace t2c {

enum class QGranularity { kPerTensor, kPerChannel };

/// Static description of the integer grid a quantizer targets.
struct QSpec {
  int nbits = 8;
  bool is_unsigned = false;  ///< true: [0, 2^n - 1]; false: ±(2^(n-1) - 1)
  QGranularity granularity = QGranularity::kPerTensor;

  std::int64_t qmin() const {
    return is_unsigned ? 0 : -((std::int64_t{1} << (nbits - 1)) - 1);
  }
  std::int64_t qmax() const {
    return is_unsigned ? (std::int64_t{1} << nbits) - 1
                       : (std::int64_t{1} << (nbits - 1)) - 1;
  }
  void validate() const;
};

class QBase {
 public:
  explicit QBase(QSpec spec);
  virtual ~QBase() = default;
  QBase(const QBase&) = delete;
  QBase& operator=(const QBase&) = delete;

  // ---- training path ----
  /// Fake-quantize `x`. When `update` is true (training / calibration),
  /// observers run and learnable parameters participate; when false the
  /// frozen parameters are applied verbatim.
  virtual Tensor forward(const Tensor& x, bool update) = 0;

  /// Straight-through backward for the most recent forward(x, true).
  /// Returns dL/dx and accumulates gradients of learnable parameters.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameters (empty for observer-only quantizers).
  virtual void collect_params(std::vector<Param*>& out);

  // ---- inference path ----
  /// Integer projection of `x` using the current scale/zero-point:
  /// q = clamp(round(x / s) + z, qmin, qmax), per tensor or per channel.
  virtual ITensor quantize(const Tensor& x) const;

  /// Dequantize integers back to float: (q - z) * s.
  virtual Tensor dequantize(const ITensor& q) const;

  /// Stops observer updates and finalizes scale/zero for deployment.
  virtual void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Bypass: forward() returns x untouched (used to obtain fp references
  /// during PTQ reconstruction). quantize() is unaffected.
  void set_bypass(bool b) { bypass_ = b; }
  bool bypassed() const { return bypass_; }

  // ---- extracted parameters (the paper's registered buffers) ----
  const QSpec& spec() const { return spec_; }
  /// Scale tensor: 1 entry (per-tensor) or OC entries (per-channel).
  const Tensor& scale() const { return scale_; }
  /// Integer zero point, same arity as scale (stored as float tensor).
  const Tensor& zero_point() const { return zero_; }
  std::int64_t qmin() const { return qmin_; }
  std::int64_t qmax() const { return qmax_; }

  virtual std::string name() const = 0;

 protected:
  /// Shared fake-quant kernel: clamp(round(x/s)+z) then dequantize, using
  /// the current scale_/zero_ tensors. Fills `inside_mask` (1 where the
  /// value was not clipped) when non-null — the default STE needs it.
  Tensor fake_quant(const Tensor& x, Tensor* inside_mask) const;

  /// Resolves the scale/zero entry for flat element `i` of a tensor with
  /// `per` elements per channel (per-channel weights are [OC, ...]).
  void scale_zero_at(std::int64_t i, std::int64_t per, float& s,
                     float& z) const;

  QSpec spec_;
  Tensor scale_;  ///< [1] or [OC]; always > 0
  Tensor zero_;   ///< [1] or [OC]; integer-valued
  std::int64_t qmin_ = 0;
  std::int64_t qmax_ = 0;
  bool frozen_ = false;
  bool bypass_ = false;

  // default-STE cache
  Tensor cached_inside_;
};

/// Factory registry: quantizers are constructible by name so experiment
/// configs stay declarative ("sawb", "pact", "minmax", "lsq", "rcf",
/// "adaround", ...).
using QuantizerFactory = std::unique_ptr<QBase> (*)(QSpec);
std::unique_ptr<QBase> make_quantizer(const std::string& name, QSpec spec);
std::vector<std::string> registered_quantizers();
void register_quantizer(const std::string& name, QuantizerFactory factory);

/// Registers the built-in quantizers (idempotent); called automatically by
/// make_quantizer, and defined in quant/builtin.cpp so a static-library
/// build cannot drop the registrations.
void ensure_builtin_quantizers();

}  // namespace t2c
