#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "quant/qlayers.h"
#include "tensor/reduce.h"
#include "tensor/elementwise.h"

namespace t2c {

SupervisedTrainer::SupervisedTrainer(Module& model,
                                     const SyntheticImageDataset& data,
                                     TrainConfig cfg)
    : model_(&model), data_(&data), cfg_(cfg) {
  check(cfg.epochs > 0 && cfg.batch_size > 0, "TrainConfig: bad epochs/batch");
}

std::int64_t SupervisedTrainer::total_steps() const {
  const std::int64_t per_epoch =
      (data_->train_size() + cfg_.batch_size - 1) / cfg_.batch_size;
  return per_epoch * cfg_.epochs;
}

void SupervisedTrainer::fit() {
  DataLoader loader(data_->train_images(), data_->train_labels(),
                    cfg_.batch_size, /*shuffle=*/true, cfg_.seed);
  if (cfg_.augment) loader.set_augment(supervised_augment());

  SGD opt(model_->parameters(), cfg_.lr, cfg_.momentum, cfg_.weight_decay);
  const std::int64_t total = total_steps();
  std::unique_ptr<LrSchedule> sched;
  if (cfg_.cosine_lr) {
    sched = std::make_unique<CosineLr>(cfg_.lr, total, cfg_.lr * 0.01F);
  } else {
    sched = std::make_unique<ConstantLr>(cfg_.lr);
  }
  CrossEntropyLoss loss(cfg_.label_smoothing);

  model_->set_mode(ExecMode::kTrain);
  std::int64_t step = 0;
  for (int e = 0; e < cfg_.epochs; ++e) {
    loader.start_epoch();
    double epoch_loss = 0.0;
    for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b, ++step) {
      Batch batch = loader.batch(b);
      opt.set_lr(sched->lr_at(step));
      model_->zero_grad();
      Tensor logits = model_->forward(batch.images);
      epoch_loss += loss.forward(logits, batch.labels);
      (void)model_->backward(loss.backward());
      if (step_hook) step_hook(step, total);
      opt.step();
    }
    if (cfg_.verbose) {
      std::printf("  epoch %d/%d  loss %.4f\n", e + 1, cfg_.epochs,
                  epoch_loss / static_cast<double>(loader.batches_per_epoch()));
    }
  }
  model_->set_mode(ExecMode::kEval);
}

double SupervisedTrainer::evaluate() {
  return evaluate_accuracy(*model_, data_->test_images(),
                           data_->test_labels());
}

ProfitTrainer::ProfitTrainer(Module& model, const SyntheticImageDataset& data,
                             TrainConfig cfg, int phases)
    : SupervisedTrainer(model, data, cfg), phases_(phases) {
  check(phases >= 1, "ProfitTrainer: need at least one phase");
}

void ProfitTrainer::fit() {
  auto qlayers = collect_qlayers(*model_);
  // Split the epoch budget across phases (at least one epoch each).
  TrainConfig phase_cfg = cfg_;
  phase_cfg.epochs = std::max(1, cfg_.epochs / phases_);

  std::vector<QLayer*> active(qlayers.begin(), qlayers.end());
  for (int phase = 0; phase < phases_; ++phase) {
    SupervisedTrainer inner(*model_, *data_, phase_cfg);
    inner.fit();
    if (phase == phases_ - 1 || active.empty()) break;

    // Rank active layers by quantization perturbation of their weights and
    // freeze the most unstable third (the AIWQ-style metric, simplified).
    std::vector<std::pair<double, QLayer*>> scored;
    for (QLayer* l : active) {
      const Tensor& w = l->weight_param().value;
      Tensor wq = l->weight_quantizer().forward(l->masked_weight(),
                                                /*update=*/false);
      const double num = std::sqrt(sse(wq, w));
      const double den = std::max(1e-12, l2_norm(w));
      scored.emplace_back(num / den, l);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const std::size_t freeze_n = std::max<std::size_t>(1, scored.size() / 3);
    std::vector<QLayer*> next;
    for (std::size_t i = 0; i < scored.size(); ++i) {
      if (i < freeze_n) {
        scored[i].second->weight_param().requires_grad = false;
      } else {
        next.push_back(scored[i].second);
      }
    }
    active = std::move(next);
    model_->set_mode(ExecMode::kTrain);
  }
  // Restore trainability for any later fine-tuning.
  for (QLayer* l : qlayers) l->weight_param().requires_grad = true;
  model_->set_mode(ExecMode::kEval);
}

}  // namespace t2c
