#include "core/trainer.h"

#include <algorithm>
#include <cmath>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "quant/qlayers.h"
#include "tensor/reduce.h"
#include "tensor/elementwise.h"
#include "util/stopwatch.h"

namespace t2c {

SupervisedTrainer::SupervisedTrainer(Module& model,
                                     const SyntheticImageDataset& data,
                                     TrainConfig cfg)
    : model_(&model), data_(&data), cfg_(cfg) {
  check(cfg.epochs > 0 && cfg.batch_size > 0, "TrainConfig: bad epochs/batch");
}

std::int64_t SupervisedTrainer::total_steps() const {
  const std::int64_t per_epoch =
      (data_->train_size() + cfg_.batch_size - 1) / cfg_.batch_size;
  return per_epoch * cfg_.epochs;
}

void SupervisedTrainer::fit() {
  DataLoader loader(data_->train_images(), data_->train_labels(),
                    cfg_.batch_size, /*shuffle=*/true, cfg_.seed);
  if (cfg_.augment) loader.set_augment(supervised_augment());

  SGD opt(model_->parameters(), cfg_.lr, cfg_.momentum, cfg_.weight_decay);
  const std::int64_t total = total_steps();
  std::unique_ptr<LrSchedule> sched;
  if (cfg_.cosine_lr) {
    sched = std::make_unique<CosineLr>(cfg_.lr, total, cfg_.lr * 0.01F);
  } else {
    sched = std::make_unique<ConstantLr>(cfg_.lr);
  }
  CrossEntropyLoss loss(cfg_.label_smoothing);

  model_->set_mode(ExecMode::kTrain);
  const obs::TraceSpan fit_span("train.fit", "train");
  // TrainConfig::verbose routes per-epoch progress through the log level:
  // verbose runs speak at info, quiet runs are still visible at debug.
  const obs::LogLevel lvl =
      cfg_.verbose ? obs::LogLevel::kInfo : obs::LogLevel::kDebug;
  obs::log(lvl, "train.fit: ", cfg_.epochs, " epochs, ", total, " steps, lr ",
           obs::fixed(cfg_.lr, 4));
  std::int64_t step = 0;
  for (int e = 0; e < cfg_.epochs; ++e) {
    const obs::TraceSpan epoch_span("train.epoch." + std::to_string(e + 1),
                                    "train");
    loader.start_epoch();
    double epoch_loss = 0.0;
    const bool prof = obs::metrics_enabled();
    for (std::int64_t b = 0; b < loader.batches_per_epoch(); ++b, ++step) {
      Stopwatch sw;
      Batch batch = loader.batch(b);
      opt.set_lr(sched->lr_at(step));
      model_->zero_grad();
      Tensor logits = model_->forward(batch.images);
      epoch_loss += loss.forward(logits, batch.labels);
      (void)model_->backward(loss.backward());
      if (step_hook) step_hook(step, total);
      opt.step();
      if (prof) {
        obs::metrics().counter("train.steps").add(1);
        obs::metrics().histogram("train.step_ms").observe(sw.millis());
      }
    }
    const double mean_loss =
        epoch_loss / static_cast<double>(loader.batches_per_epoch());
    if (prof) {
      obs::metrics().gauge("train.epoch_loss").set(mean_loss);
      obs::metrics()
          .histogram("train.loss", {0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0})
          .observe(mean_loss);
    }
    obs::log(lvl, "epoch ", e + 1, "/", cfg_.epochs, "  loss ",
             obs::fixed(mean_loss));
  }
  model_->set_mode(ExecMode::kEval);
}

double SupervisedTrainer::evaluate() {
  const obs::TraceSpan span("train.evaluate", "train");
  const double acc = evaluate_accuracy(*model_, data_->test_images(),
                                       data_->test_labels());
  if (obs::metrics_enabled()) {
    obs::metrics().gauge("train.eval_accuracy").set(acc);
  }
  return acc;
}

ProfitTrainer::ProfitTrainer(Module& model, const SyntheticImageDataset& data,
                             TrainConfig cfg, int phases)
    : SupervisedTrainer(model, data, cfg), phases_(phases) {
  check(phases >= 1, "ProfitTrainer: need at least one phase");
}

void ProfitTrainer::fit() {
  const obs::TraceSpan span("train.profit", "train");
  auto qlayers = collect_qlayers(*model_);
  // Split the epoch budget across phases (at least one epoch each).
  TrainConfig phase_cfg = cfg_;
  phase_cfg.epochs = std::max(1, cfg_.epochs / phases_);

  std::vector<QLayer*> active(qlayers.begin(), qlayers.end());
  for (int phase = 0; phase < phases_; ++phase) {
    const obs::TraceSpan phase_span(
        "train.profit.phase." + std::to_string(phase + 1), "train");
    obs::log_debug("profit: phase ", phase + 1, "/", phases_, ", ",
                   active.size(), " layers still training");
    SupervisedTrainer inner(*model_, *data_, phase_cfg);
    inner.fit();
    if (phase == phases_ - 1 || active.empty()) break;

    // Rank active layers by quantization perturbation of their weights and
    // freeze the most unstable third (the AIWQ-style metric, simplified).
    std::vector<std::pair<double, QLayer*>> scored;
    for (QLayer* l : active) {
      const Tensor& w = l->weight_param().value;
      Tensor wq = l->weight_quantizer().forward(l->masked_weight(),
                                                /*update=*/false);
      const double num = std::sqrt(sse(wq, w));
      const double den = std::max(1e-12, l2_norm(w));
      scored.emplace_back(num / den, l);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const std::size_t freeze_n = std::max<std::size_t>(1, scored.size() / 3);
    std::vector<QLayer*> next;
    for (std::size_t i = 0; i < scored.size(); ++i) {
      if (i < freeze_n) {
        scored[i].second->weight_param().requires_grad = false;
      } else {
        next.push_back(scored[i].second);
      }
    }
    active = std::move(next);
    model_->set_mode(ExecMode::kTrain);
  }
  // Restore trainability for any later fine-tuning.
  for (QLayer* l : qlayers) l->weight_param().requires_grad = true;
  model_->set_mode(ExecMode::kEval);
}

}  // namespace t2c
