// Shared parallel-execution runtime: one persistent thread pool behind a
// `parallel_for` primitive with *static deterministic partitioning*.
//
// Contract (see DESIGN.md "Threading model"): the partition of [begin, end)
// into contiguous chunks depends on the pool size, so bodies must never let
// results depend on the partition. The rules that make every kernel in this
// repo bit-identical at any thread count:
//   1. each output element is written by exactly one chunk, and its
//      accumulation loop runs in a fixed (chunk-independent) order;
//   2. cross-chunk reductions go through per-slot accumulators and are
//      restricted to order-independent math (integer sums, max), merged
//      once after the parallel_for returns.
// Float kernels follow the same rules, so the dual-path audit produces
// identical SQNR reports and golden vectors for any T2C_THREADS.
//
// Pool lifecycle: created lazily on first use, sized from the T2C_THREADS
// env var (default: hardware concurrency), resizable via set_max_threads()
// (`t2c_cli --threads`). Workers sleep on a condition variable between
// regions; nested parallel_for calls run inline on the calling worker.
//
// Observability (DESIGN.md §3.8): every pooled dispatch is the
// instrumentation boundary. With tracing on, each chunk records a busy
// span on its worker's trace track (workers register as `pool.worker.N`)
// and the region brackets a `pool.occupancy` counter; with metrics on,
// per-region stats land in `pool.regions`/`pool.chunks` counters and the
// `pool.region_ms`/`pool.imbalance` (slowest/mean chunk) histograms.
// Disabled cost: two relaxed loads per pooled region.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

namespace t2c::par {

/// Current pool size (>= 1). First call resolves T2C_THREADS.
int max_threads();

/// Resizes the pool (clamped to >= 1). Must not be called from inside a
/// parallel region or concurrently with parallel_for.
void set_max_threads(int n);

/// Upper bound (exclusive) for the `slot` argument passed to bodies — size
/// per-slot accumulator arrays with this. Stable across one parallel_for.
int max_slots();

namespace detail {
/// Type-erased core: splits [begin, end) into at most max_threads()
/// contiguous chunks of at least `grain` items and runs fn(i0, i1, slot)
/// for each, slot in [0, max_slots()). Runs inline when only one chunk
/// results, when called from inside a parallel region, or on a 1-thread
/// pool. Exceptions from bodies are rethrown on the calling thread.
void parallel_for_impl(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn);
}  // namespace detail

/// Parallel map over [begin, end). `fn` is either fn(i0, i1) or
/// fn(i0, i1, slot); each invocation covers the contiguous item range
/// [i0, i1). `grain` is the minimum number of items per chunk — pick it so
/// one chunk amortizes the dispatch (a fixed constant per call site, not a
/// function of max_threads()).
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn) {
  if constexpr (std::is_invocable_v<Fn&, std::int64_t, std::int64_t, int>) {
    detail::parallel_for_impl(begin, end, grain,
                              std::function<void(std::int64_t, std::int64_t,
                                                 int)>(std::forward<Fn>(fn)));
  } else {
    static_assert(std::is_invocable_v<Fn&, std::int64_t, std::int64_t>,
                  "parallel_for body must be fn(i0, i1) or fn(i0, i1, slot)");
    detail::parallel_for_impl(
        begin, end, grain,
        [&fn](std::int64_t i0, std::int64_t i1, int) { fn(i0, i1); });
  }
}

}  // namespace t2c::par
