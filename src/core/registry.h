// TRAINER registry — the paper's `trainer = TRAINER[user_select](args)`
// entry point. Every training scheme the toolkit supports (supervised QAT,
// PROFIT, the PTQ family, sparse training, SSL with/without XD) is
// constructible by name with declarative options.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/trainer.h"
#include "nn/sequential.h"
#include "quant/ptq.h"
#include "sparse/sparse_trainer.h"
#include "ssl/ssl_trainer.h"

namespace t2c {

struct TrainerOptions {
  TrainConfig train;                ///< shared supervised knobs
  std::int64_t calib_batches = 8;   ///< PTQ calibration batches
  ReconstructConfig ptq;            ///< AdaRound / QDrop reconstruction
  SparseTrainConfig sparse;         ///< sparse-training knobs
  SSLConfig ssl;                    ///< SSL knobs
  int profit_phases = 3;
  /// Builder for the structurally-identical EMA teacher (SSL-XD only).
  std::function<std::unique_ptr<Sequential>()> teacher_factory;
};

/// Names: "supervised" (= "qat"), "profit", "ptq_minmax", "ptq_adaround",
/// "ptq_qdrop", "sparse_magnitude", "sparse_granet", "sparse_nm",
/// "ssl_barlow", "ssl_xd". Throws on unknown names, listing what exists.
std::unique_ptr<Trainer> make_trainer(const std::string& name,
                                      Sequential& model,
                                      const SyntheticImageDataset& data,
                                      TrainerOptions options = {});

std::vector<std::string> registered_trainers();

}  // namespace t2c
