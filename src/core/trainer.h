// Training drivers — the TRAINER layer of the paper's five-line workflow
// (§3.4). SupervisedTrainer covers fp32 pre-training and QAT; PTQ trainers
// wrap the drivers in quant/ptq.h; PROFIT adds progressive layer freezing.
#pragma once

#include <functional>
#include <memory>

#include "data/loader.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"

namespace t2c {

struct TrainConfig {
  int epochs = 5;
  std::int64_t batch_size = 32;
  float lr = 0.05F;
  float momentum = 0.9F;
  float weight_decay = 5e-4F;
  float label_smoothing = 0.0F;
  bool augment = true;
  bool cosine_lr = true;
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Common interface: `trainer.fit()` as in the paper's workflow snippet.
class Trainer {
 public:
  virtual ~Trainer() = default;
  virtual void fit() = 0;
  /// Top-1 test accuracy (%) of the underlying model.
  virtual double evaluate() = 0;
};

class SupervisedTrainer : public Trainer {
 public:
  SupervisedTrainer(Module& model, const SyntheticImageDataset& data,
                    TrainConfig cfg);

  void fit() override;
  double evaluate() override;

  /// Invoked after every optimizer step with (step, total_steps) — the
  /// hook GraNet's schedule and PROFIT's freezing attach to. The hook runs
  /// while gradients of the step are still available.
  std::function<void(std::int64_t, std::int64_t)> step_hook;

  Module& model() { return *model_; }
  std::int64_t total_steps() const;

 protected:
  Module* model_;
  const SyntheticImageDataset* data_;
  TrainConfig cfg_;
};

/// PROFIT (Park & Yoo, 2020), simplified for this substrate: QAT runs in
/// `phases` rounds; after each round the layers with the largest weight
/// quantization perturbation ||W_q - W|| / ||W|| are frozen (their weights
/// stop updating), stabilizing sub-4-bit MobileNet training.
class ProfitTrainer final : public SupervisedTrainer {
 public:
  ProfitTrainer(Module& model, const SyntheticImageDataset& data,
                TrainConfig cfg, int phases = 3);

  void fit() override;

 private:
  int phases_;
};

}  // namespace t2c
