#include "core/t2c.h"

#include <filesystem>

namespace t2c {

T2C::T2C(Sequential& model, ConvertConfig cfg)
    : model_(&model), converter_(std::move(cfg)) {}

DeployModel T2C::nn2chip(bool save_model, const std::string& out_dir,
                         int hex_word_bits) {
  DeployModel dm = converter_.convert(*model_);
  if (save_model) {
    std::filesystem::create_directories(out_dir);
    save_checkpoint(dm, out_dir + "/model.t2c");
    (void)export_hex_images(dm, out_dir + "/hex", hex_word_bits);
  }
  return dm;
}

}  // namespace t2c
