#include "core/t2c.h"

#include <filesystem>

#include "obs/log.h"
#include "obs/trace.h"

namespace t2c {

T2C::T2C(Sequential& model, ConvertConfig cfg)
    : model_(&model), converter_(std::move(cfg)) {}

DeployModel T2C::nn2chip(bool save_model, const std::string& out_dir,
                         int hex_word_bits) {
  const obs::TraceSpan span("convert.nn2chip", "convert");
  DeployModel dm = converter_.convert(*model_);
  if (save_model) {
    const obs::TraceSpan save_span("xport.save", "xport");
    std::filesystem::create_directories(out_dir);
    save_checkpoint(dm, out_dir + "/model.t2c");
    const auto hex = export_hex_images(dm, out_dir + "/hex", hex_word_bits);
    obs::log_debug("nn2chip: wrote ", out_dir, "/model.t2c and ", hex.size(),
                   " hex images under ", out_dir, "/hex");
  }
  return dm;
}

}  // namespace t2c
