#include "core/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/pmu.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace t2c::par {

namespace {

/// Set while a thread executes a parallel_for body; nested calls run inline
/// instead of deadlocking on the (busy) pool.
thread_local bool g_in_parallel = false;

int default_threads() {
  if (const char* env = std::getenv("T2C_THREADS")) {
    const int n = std::atoi(env);
    check(n >= 1 && n <= 1024, "T2C_THREADS must be in [1, 1024]");
    return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 1024U));
}

/// Persistent pool: nthreads-1 sleeping workers plus the calling thread.
/// One region at a time: run() publishes a job under the mutex, every
/// worker wakes, executes its part (possibly empty) and acknowledges; the
/// caller executes part 0 and waits for all acknowledgements.
class Pool {
 public:
  Pool() { start(default_threads()); }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int threads() const { return nthreads_; }

  void resize(int n) {
    n = std::max(1, n);
    if (n == nthreads_) return;
    const std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
    stop_ = false;
    generation_ = 0;  // fresh workers start with seen == 0
    pending_ = 0;
    job_ = nullptr;
    job_parts_ = 0;
    start(n);
  }

  /// Runs fn(part) for part in [0, nparts); nparts <= threads(). Part p
  /// executes on worker p (part 0 on the caller). Rethrows the first body
  /// exception after every part finished. Callers serialize on run_mu_:
  /// concurrent pooled regions (two serving threads inside run_int) queue
  /// up instead of clobbering each other's job state — the pool really is
  /// one region at a time.
  void run(int nparts, const std::function<void(int)>& fn) {
    const std::lock_guard<std::mutex> run_lock(run_mu_);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      job_parts_ = nparts;
      pending_ = nthreads_ - 1;
      err_ = nullptr;
      ++generation_;
    }
    cv_work_.notify_all();
    try {
      fn(0);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!err_) err_ = std::current_exception();
    }
    std::exception_ptr err;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [&] { return pending_ == 0; });
      job_ = nullptr;
      err = err_;
    }
    if (err) std::rethrow_exception(err);
  }

 private:
  void start(int n) {
    nthreads_ = n;
    workers_.reserve(static_cast<std::size_t>(n - 1));
    for (int w = 1; w < n; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
  }

  void worker_main(int part) {
    // Register the trace track once per thread: "M" metadata in the
    // exported JSON names every pool worker even if tracing turns on
    // after the pool was built.
    const std::string wname = "pool.worker." + std::to_string(part);
    obs::name_current_thread(wname);
    // Eagerly create this worker's telemetry and flight rings so the
    // first recorded event inside a pooled region never allocates (and a
    // postmortem can name the thread).
    obs::telemetry_register_thread();
    obs::flight_register_thread(wname.c_str());
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* fn = nullptr;
      int nparts = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = job_;
        nparts = job_parts_;
      }
      if (part < nparts) {
        try {
          (*fn)(part);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mu_);
          if (!err_) err_ = std::current_exception();
        }
      }
      bool last = false;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        last = --pending_ == 0;
      }
      if (last) cv_done_.notify_all();
    }
  }

  std::mutex run_mu_;  ///< serializes whole regions across caller threads
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  int nthreads_ = 1;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  const std::function<void(int)>* job_ = nullptr;
  int job_parts_ = 0;
  std::exception_ptr err_;
};

Pool& pool() {
  static Pool p;
  return p;
}

}  // namespace

int max_threads() { return pool().threads(); }

int max_slots() { return pool().threads(); }

void set_max_threads(int n) {
  check(!g_in_parallel, "set_max_threads inside a parallel region");
  pool().resize(n);
}

namespace detail {

namespace {

/// Bucket edges for the slowest/mean chunk ratio: 1.0 is a perfectly
/// balanced region, the tail buckets catch pathological splits.
const std::vector<double>& imbalance_buckets() {
  static const std::vector<double> kBuckets = {1.0, 1.05, 1.1, 1.25, 1.5,
                                               2.0, 3.0,  5.0, 10.0};
  return kBuckets;
}

}  // namespace

void parallel_for_impl(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  const std::int64_t g = std::max<std::int64_t>(1, grain);
  const std::int64_t max_parts = (range + g - 1) / g;
  const int nparts = static_cast<int>(
      std::min<std::int64_t>(pool().threads(), max_parts));
  if (nparts <= 1 || g_in_parallel) {
    fn(begin, end, 0);
    return;
  }
  const std::int64_t base = range / nparts;
  const std::int64_t rem = range % nparts;
  const auto chunk_of = [&](int part, std::int64_t& i0, std::int64_t& i1) {
    i0 = begin + part * base + std::min<std::int64_t>(part, rem);
    i1 = i0 + base + (part < rem ? 1 : 0);
  };
  // Pooled dispatch is the instrumented boundary: per-worker busy spans
  // ("X" on each worker's track), pool.occupancy counter samples, and
  // per-region chunk stats feeding pool.* metrics. With the PMU on, every
  // chunk that runs on a pool worker (part >= 1; part 0 executes on the
  // caller, inside the caller's own bracket) reads its thread's counter
  // group before/after and lands the delta in the worker accumulator so
  // the executor can attribute it to the current step (DESIGN.md §3.9).
  // Nested/inline regions stay uninstrumented — they run inside a chunk
  // that is already accounted for. Cost when everything is off: the three
  // relaxed loads.
  const bool met = obs::metrics_enabled();
  const bool trace = obs::trace_enabled();
  const bool pmu = obs::pmu_enabled();
  if (obs::flight_enabled()) {
    // One black-box event per pooled region (caller side, before the
    // fan-out): a crash mid-region shows which thread was dispatching and
    // how wide. Static key: interning is cold and happens exactly once.
    static const std::uint32_t kRegionKey = obs::flight_key("pool.region");
    obs::flight_record(obs::FlightKind::kPoolRegion, kRegionKey,
                       static_cast<double>(nparts));
  }
  if (!met && !trace && !pmu) {
    pool().run(nparts, [&](int part) {
      std::int64_t i0 = 0;
      std::int64_t i1 = 0;
      chunk_of(part, i0, i1);
      g_in_parallel = true;
      try {
        fn(i0, i1, part);
      } catch (...) {
        g_in_parallel = false;
        throw;
      }
      g_in_parallel = false;
    });
    return;
  }
  std::vector<double> chunk_ms(static_cast<std::size_t>(nparts), 0.0);
  if (trace) {
    obs::tracer().counter("pool.occupancy", "pool",
                          static_cast<double>(nparts));
  }
  pool().run(nparts, [&](int part) {
    std::int64_t i0 = 0;
    std::int64_t i1 = 0;
    chunk_of(part, i0, i1);
    const std::int64_t ts = trace ? obs::tracer().now_us() : 0;
    const bool sample_pmu = pmu && part != 0;
    obs::PmuCounts pmu0;
    if (sample_pmu) obs::thread_pmu().read(pmu0);
    Stopwatch sw;
    g_in_parallel = true;
    try {
      fn(i0, i1, part);
    } catch (...) {
      g_in_parallel = false;
      throw;
    }
    g_in_parallel = false;
    chunk_ms[static_cast<std::size_t>(part)] = sw.millis();
    if (sample_pmu) {
      obs::PmuCounts pmu1;
      obs::thread_pmu().read(pmu1);
      obs::pmu_worker_acc().add(obs::pmu_delta(pmu0, pmu1));
    }
    if (trace) {
      obs::TraceRecorder::Event e;
      e.name = "chunk";
      e.cat = "pool";
      e.ts_us = ts;
      e.dur_us = obs::tracer().now_us() - ts;
      e.tid = obs::trace_tid();
      obs::tracer().record(std::move(e));
    }
  });
  if (trace) obs::tracer().counter("pool.occupancy", "pool", 0.0);
  if (met) {
    double total = 0.0;
    double slowest = 0.0;
    for (const double ms : chunk_ms) {
      total += ms;
      slowest = std::max(slowest, ms);
    }
    const double mean = total / static_cast<double>(nparts);
    obs::metrics().counter("pool.regions").add(1);
    obs::metrics().counter("pool.chunks").add(nparts);
    // The region's wall time is its critical path — the slowest chunk.
    obs::metrics().histogram("pool.region_ms").observe(slowest);
    if (mean > 0.0) {
      obs::metrics()
          .histogram("pool.imbalance", imbalance_buckets())
          .observe(slowest / mean);
    }
  }
}

}  // namespace detail

}  // namespace t2c::par
