#include "core/registry.h"

namespace t2c {

namespace {

/// PTQ driver packaged as a Trainer: calibrate observers, then optionally
/// run AdaRound / QDrop block reconstruction.
class PTQTrainer final : public Trainer {
 public:
  enum class Method { kMinMax, kAdaRound, kQDrop };

  PTQTrainer(Sequential& model, const SyntheticImageDataset& data,
             TrainerOptions opts, Method method)
      : model_(&model), data_(&data), opts_(std::move(opts)), method_(method) {}

  void fit() override {
    DataLoader loader(data_->train_images(), data_->train_labels(),
                      opts_.train.batch_size, /*shuffle=*/true,
                      opts_.train.seed);
    calibrate(*model_, loader, opts_.calib_batches);
    if (method_ == Method::kAdaRound) {
      (void)reconstruct_adaround(*model_, loader, opts_.ptq);
    } else if (method_ == Method::kQDrop) {
      (void)reconstruct_qdrop(*model_, loader, opts_.ptq);
    }
  }

  double evaluate() override {
    return evaluate_accuracy(*model_, data_->test_images(),
                             data_->test_labels());
  }

 private:
  Sequential* model_;
  const SyntheticImageDataset* data_;
  TrainerOptions opts_;
  Method method_;
};

}  // namespace

std::unique_ptr<Trainer> make_trainer(const std::string& name,
                                      Sequential& model,
                                      const SyntheticImageDataset& data,
                                      TrainerOptions options) {
  if (name == "supervised" || name == "qat") {
    return std::make_unique<SupervisedTrainer>(model, data, options.train);
  }
  if (name == "profit") {
    return std::make_unique<ProfitTrainer>(model, data, options.train,
                                           options.profit_phases);
  }
  if (name == "ptq_minmax") {
    return std::make_unique<PTQTrainer>(model, data, std::move(options),
                                        PTQTrainer::Method::kMinMax);
  }
  if (name == "ptq_adaround") {
    return std::make_unique<PTQTrainer>(model, data, std::move(options),
                                        PTQTrainer::Method::kAdaRound);
  }
  if (name == "ptq_qdrop") {
    return std::make_unique<PTQTrainer>(model, data, std::move(options),
                                        PTQTrainer::Method::kQDrop);
  }
  if (name == "sparse_magnitude" || name == "sparse_granet" ||
      name == "sparse_nm") {
    SparseTrainConfig cfg = options.sparse;
    cfg.train = options.train;
    cfg.method = name == "sparse_nm"
                     ? SparseMethod::kNM
                     : (name == "sparse_granet" ? SparseMethod::kGraNet
                                                : SparseMethod::kMagnitude);
    return std::make_unique<SparseTrainer>(model, data, cfg);
  }
  if (name == "ssl_barlow" || name == "ssl_xd") {
    SSLConfig cfg = options.ssl;
    cfg.use_xd = (name == "ssl_xd");
    return std::make_unique<SSLTrainer>(model, options.teacher_factory, data,
                                        cfg);
  }
  std::string known;
  for (const auto& k : registered_trainers()) known += k + " ";
  fail("unknown trainer '" + name + "'; registered: " + known);
}

std::vector<std::string> registered_trainers() {
  return {"supervised",     "qat",         "profit",       "ptq_minmax",
          "ptq_adaround",   "ptq_qdrop",   "sparse_magnitude",
          "sparse_granet",  "sparse_nm",   "ssl_barlow",   "ssl_xd"};
}

}  // namespace t2c
