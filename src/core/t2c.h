// The top-level Torch2Chip entry point — the paper's five-line workflow:
//
//   auto model = make_resnet20(mcfg);
//   auto trainer = make_trainer("qat", *model, data, opts);   // TRAINER[...]
//   trainer->fit();
//   T2C t2c(*model, convert_cfg);                             // nn2c = T2C(...)
//   DeployModel chip = t2c.nn2chip(/*save_model=*/true, dir); // nn2chip()
//
// nn2chip() fuses, extracts, and (optionally) writes every export format of
// Fig. 5: the integer checkpoint, hex memory images, and decimal dumps.
#pragma once

#include <string>

#include "fusion/converter.h"
#include "xport/checkpoint.h"
#include "xport/writers.h"

namespace t2c {

class T2C {
 public:
  T2C(Sequential& model, ConvertConfig cfg);

  /// Fuses + extracts the integer deploy graph. When `save_model` is true,
  /// writes `<out_dir>/model.t2c` (integer checkpoint) and hex memory
  /// images under `<out_dir>/hex/`.
  DeployModel nn2chip(bool save_model = false,
                      const std::string& out_dir = "t2c_out",
                      int hex_word_bits = 8);

  const ConvertConfig& config() const { return converter_.config(); }

 private:
  Sequential* model_;
  T2CConverter converter_;
};

}  // namespace t2c
