// GraNet-style gradual pruning with neuroregeneration (Liu et al., 2021):
// sparsity follows the cubic ramp s_t = s_f * (1 - (1 - t/T)^3); at every
// prune step the smallest-magnitude weights are removed, then a decaying
// fraction of the pruned positions with the largest gradient magnitude is
// regrown (and the same count of smallest alive weights pruned instead),
// letting connectivity migrate during training.
#pragma once

#include "sparse/pruner.h"

namespace t2c {

struct GraNetConfig {
  double final_sparsity = 0.8;
  double init_sparsity = 0.0;
  double regrow_fraction = 0.3;  ///< initial fraction of pruned set regrown
  std::int64_t prune_every = 20; ///< steps between schedule updates
};

class GraNetPruner final : public Pruner {
 public:
  explicit GraNetPruner(GraNetConfig cfg);

  /// One-shot interface (Pruner): plain cubic-schedule endpoint.
  void apply(const std::vector<QLayer*>& layers, double sparsity) override;
  std::string name() const override { return "granet"; }

  /// Scheduled interface: call once per optimizer step with the step index
  /// and the total step count. Uses current weight gradients for regrowth.
  void step(const std::vector<QLayer*>& layers, std::int64_t t,
            std::int64_t total_steps);

  /// Like step() but ignores the prune_every gate — callers that manage
  /// their own cadence (short training runs) use this directly.
  void force_step(const std::vector<QLayer*>& layers, std::int64_t t,
                  std::int64_t total_steps);

  /// Target sparsity at progress t/T under the cubic schedule.
  double sparsity_at(std::int64_t t, std::int64_t total_steps) const;

  const GraNetConfig& config() const { return cfg_; }

 private:
  /// Magnitude-prunes to `target`, then regrows by gradient magnitude.
  void prune_and_regrow(const std::vector<QLayer*>& layers, double target,
                        double regrow_frac);

  GraNetConfig cfg_;
};

}  // namespace t2c
