// Sparse training driver (Table 3): supervised training with a pruning
// schedule attached to the optimizer-step hook, followed by the usual
// PTQ + conversion path. Masks persist, so the exported integer model
// carries the zeros.
#pragma once

#include <memory>

#include "core/trainer.h"
#include "nn/sequential.h"
#include "sparse/granet.h"
#include "sparse/nm_pruner.h"

namespace t2c {

enum class SparseMethod { kMagnitude, kGraNet, kNM };

struct SparseTrainConfig {
  TrainConfig train;
  SparseMethod method = SparseMethod::kGraNet;
  double final_sparsity = 0.8;  ///< ignored for N:M
  int nm_n = 2;
  int nm_m = 4;
};

class SparseTrainer final : public Trainer {
 public:
  SparseTrainer(Sequential& model, const SyntheticImageDataset& data,
                SparseTrainConfig cfg);

  void fit() override;
  double evaluate() override;

  /// Achieved sparsity over the prunable layers after fit().
  double achieved_sparsity();

 private:
  Sequential* model_;
  const SyntheticImageDataset* data_;
  SparseTrainConfig cfg_;
};

}  // namespace t2c
