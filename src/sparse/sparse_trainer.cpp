#include "sparse/sparse_trainer.h"

namespace t2c {

SparseTrainer::SparseTrainer(Sequential& model,
                             const SyntheticImageDataset& data,
                             SparseTrainConfig cfg)
    : model_(&model), data_(&data), cfg_(cfg) {}

void SparseTrainer::fit() {
  auto layers = prunable_layers(*model_);
  SupervisedTrainer trainer(*model_, *data_, cfg_.train);

  switch (cfg_.method) {
    case SparseMethod::kGraNet: {
      GraNetConfig gcfg;
      gcfg.final_sparsity = cfg_.final_sparsity;
      auto pruner = std::make_shared<GraNetPruner>(gcfg);
      // Ramp over the first 70% of training, then keep the mask fixed so
      // the surviving weights can settle (GraNet's stabilization phase).
      // The cadence adapts to the run length so short runs still reach the
      // target (roughly 10 schedule updates across the ramp).
      const auto ramp = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(0.7 *
                                       static_cast<double>(trainer.total_steps())));
      const auto every = std::max<std::int64_t>(1, ramp / 10);
      trainer.step_hook = [pruner, layers, ramp, every](std::int64_t t,
                                                        std::int64_t) {
        if (t <= ramp && (t % every == 0 || t == ramp)) {
          pruner->force_step(layers, t, ramp);
        }
      };
      trainer.fit();
      break;
    }
    case SparseMethod::kNM: {
      NMPruner pruner(cfg_.nm_n, cfg_.nm_m);
      // SR-STE-style: re-project the mask periodically so it tracks the
      // moving weights, with a final projection at the end.
      trainer.step_hook = [&pruner, layers](std::int64_t t, std::int64_t) {
        if (t % 25 == 0) pruner.apply(layers, 0.0);
      };
      trainer.fit();
      pruner.apply(layers, 0.0);
      break;
    }
    case SparseMethod::kMagnitude: {
      MagnitudePruner pruner;
      trainer.step_hook = [&pruner, layers, this](std::int64_t t,
                                                  std::int64_t total) {
        const auto ramp = static_cast<std::int64_t>(0.7 * static_cast<double>(total));
        if (t % 20 == 0 && t <= ramp) {
          const double progress =
              static_cast<double>(t) / std::max<std::int64_t>(1, ramp);
          pruner.apply(layers, cfg_.final_sparsity * progress);
        }
      };
      trainer.fit();
      break;
    }
  }
}

double SparseTrainer::evaluate() {
  return evaluate_accuracy(*model_, data_->test_images(),
                           data_->test_labels());
}

double SparseTrainer::achieved_sparsity() {
  auto layers = prunable_layers(*model_);
  return masked_sparsity(layers);
}

}  // namespace t2c
