#include "sparse/nm_pruner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace t2c {

NMPruner::NMPruner(int n, int m) : n_(n), m_(m) {
  check(m >= 2 && n >= 1 && n < m, "NMPruner: need 1 <= N < M");
}

std::string NMPruner::name() const {
  return "nm_" + std::to_string(n_) + ":" + std::to_string(m_);
}

Tensor NMPruner::nm_mask(const Tensor& w, int n, int m) {
  Tensor mask(w.shape(), 1.0F);
  const std::int64_t oc = w.size(0);
  const std::int64_t per = w.numel() / oc;
  std::vector<int> idx(static_cast<std::size_t>(m));
  for (std::int64_t c = 0; c < oc; ++c) {
    const float* row = w.data() + c * per;
    float* mrow = mask.data() + c * per;
    for (std::int64_t g = 0; g + m <= per; g += m) {
      std::iota(idx.begin(), idx.end(), 0);
      std::partial_sort(idx.begin(), idx.begin() + n, idx.end(),
                        [&](int a, int b) {
                          return std::fabs(row[g + a]) > std::fabs(row[g + b]);
                        });
      for (int j = n; j < m; ++j) mrow[g + idx[static_cast<std::size_t>(j)]] = 0.0F;
    }
    // Trailing partial group (per % m != 0) is left dense.
  }
  return mask;
}

void NMPruner::apply(const std::vector<QLayer*>& layers, double) {
  for (QLayer* l : layers) {
    l->set_mask(nm_mask(l->weight_param().value, n_, m_));
  }
}

std::int64_t count_nm_violations(const Tensor& w, int n, int m) {
  std::int64_t violations = 0;
  const std::int64_t oc = w.size(0);
  const std::int64_t per = w.numel() / oc;
  for (std::int64_t c = 0; c < oc; ++c) {
    const float* row = w.data() + c * per;
    for (std::int64_t g = 0; g + m <= per; g += m) {
      int nz = 0;
      for (int j = 0; j < m; ++j) {
        if (row[g + j] != 0.0F) ++nz;
      }
      if (nz > n) ++violations;
    }
  }
  return violations;
}

}  // namespace t2c
