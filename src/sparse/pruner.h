// Weight sparsification (paper §2.2, §4.3). Pruners install {0,1} masks on
// QLayers; the masks persist through quantization and conversion, so pruned
// weights are exported as raw zeros in the integer model — not as
// side-band masks (the paper's point about practical co-deployment).
#pragma once

#include <string>
#include <vector>

#include "quant/qlayers.h"

namespace t2c {

class Pruner {
 public:
  virtual ~Pruner() = default;

  /// Installs masks achieving (approximately) the requested sparsity on the
  /// given layers. `sparsity` in [0, 1).
  virtual void apply(const std::vector<QLayer*>& layers,
                     double sparsity) = 0;
  virtual std::string name() const = 0;
};

/// Element-wise global magnitude pruning (Han et al., 2016): one threshold
/// across all target layers.
class MagnitudePruner final : public Pruner {
 public:
  void apply(const std::vector<QLayer*>& layers, double sparsity) override;
  std::string name() const override { return "magnitude"; }
};

/// Achieved sparsity over the masked weights of the given layers.
double masked_sparsity(const std::vector<QLayer*>& layers);

/// Selects the prunable layers of a model. By convention the classifier
/// head (last QLinear) is kept dense, matching the paper's recipes.
std::vector<QLayer*> prunable_layers(Module& model, bool skip_head = true);

}  // namespace t2c
