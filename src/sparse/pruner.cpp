#include "sparse/pruner.h"

#include <algorithm>
#include <cmath>

#include "tensor/reduce.h"

namespace t2c {

void MagnitudePruner::apply(const std::vector<QLayer*>& layers,
                            double sparsity) {
  check(sparsity >= 0.0 && sparsity < 1.0,
        "MagnitudePruner: sparsity must be in [0, 1)");
  std::vector<float> mags;
  for (QLayer* l : layers) {
    const Tensor& w = l->weight_param().value;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      mags.push_back(std::fabs(w[i]));
    }
  }
  if (mags.empty()) return;
  const auto k = static_cast<std::size_t>(
      sparsity * static_cast<double>(mags.size()));
  if (k == 0) {
    for (QLayer* l : layers) l->set_mask(std::nullopt);
    return;
  }
  std::nth_element(mags.begin(), mags.begin() + (k - 1), mags.end());
  const float threshold = mags[k - 1];
  for (QLayer* l : layers) {
    const Tensor& w = l->weight_param().value;
    Tensor mask(w.shape());
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      mask[i] = std::fabs(w[i]) > threshold ? 1.0F : 0.0F;
    }
    l->set_mask(std::move(mask));
  }
}

double masked_sparsity(const std::vector<QLayer*>& layers) {
  std::int64_t zeros = 0, total = 0;
  for (QLayer* l : layers) {
    const Tensor w = l->masked_weight();
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      if (w[i] == 0.0F) ++zeros;
    }
    total += w.numel();
  }
  return total > 0 ? static_cast<double>(zeros) / static_cast<double>(total)
                   : 0.0;
}

std::vector<QLayer*> prunable_layers(Module& model, bool skip_head) {
  auto layers = collect_qlayers(model);
  if (skip_head && !layers.empty()) {
    // The last QLinear in traversal order is the classifier head.
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      if (dynamic_cast<QLinear*>(&(*it)->as_module()) != nullptr) {
        layers.erase(std::next(it).base());
        break;
      }
    }
  }
  return layers;
}

}  // namespace t2c
