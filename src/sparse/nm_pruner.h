// N:M structured fine-grained sparsity (Zhou et al., 2021): within every
// group of M consecutive weights along the input dimension, only the N
// largest-magnitude entries survive. 2:4 is the hardware-supported pattern
// of Table 3.
#pragma once

#include "sparse/pruner.h"

namespace t2c {

class NMPruner final : public Pruner {
 public:
  NMPruner(int n, int m);

  /// `sparsity` is ignored — N:M fixes it at 1 - N/M.
  void apply(const std::vector<QLayer*>& layers, double sparsity) override;
  std::string name() const override;

  int n() const { return n_; }
  int m() const { return m_; }
  double target_sparsity() const {
    return 1.0 - static_cast<double>(n_) / static_cast<double>(m_);
  }

  /// Builds the N:M mask for a single weight tensor (groups run along the
  /// flattened per-output-channel axis). Exposed for the property tests.
  static Tensor nm_mask(const Tensor& w, int n, int m);

 private:
  int n_, m_;
};

/// Verifies the N:M invariant on a (masked) weight tensor: every complete
/// group of M has at most N non-zeros. Returns the number of violating
/// groups (0 when the pattern holds).
std::int64_t count_nm_violations(const Tensor& w, int n, int m);

}  // namespace t2c
