#include "sparse/granet.h"

#include <algorithm>
#include <cmath>

namespace t2c {

GraNetPruner::GraNetPruner(GraNetConfig cfg) : cfg_(cfg) {
  check(cfg.final_sparsity >= 0.0 && cfg.final_sparsity < 1.0,
        "GraNet: final sparsity must be in [0, 1)");
  check(cfg.init_sparsity >= 0.0 && cfg.init_sparsity <= cfg.final_sparsity,
        "GraNet: init sparsity must be <= final");
  check(cfg.prune_every > 0, "GraNet: prune_every must be positive");
}

double GraNetPruner::sparsity_at(std::int64_t t,
                                 std::int64_t total_steps) const {
  const double progress = std::min(
      1.0, static_cast<double>(t) / std::max<std::int64_t>(1, total_steps));
  const double ramp = 1.0 - std::pow(1.0 - progress, 3.0);
  return cfg_.init_sparsity +
         (cfg_.final_sparsity - cfg_.init_sparsity) * ramp;
}

void GraNetPruner::apply(const std::vector<QLayer*>& layers,
                         double sparsity) {
  MagnitudePruner mag;
  mag.apply(layers, sparsity);
}

void GraNetPruner::step(const std::vector<QLayer*>& layers, std::int64_t t,
                        std::int64_t total_steps) {
  if (t % cfg_.prune_every != 0) return;
  force_step(layers, t, total_steps);
}

void GraNetPruner::force_step(const std::vector<QLayer*>& layers,
                              std::int64_t t, std::int64_t total_steps) {
  const double target = sparsity_at(t, total_steps);
  const double progress = std::min(
      1.0, static_cast<double>(t) / std::max<std::int64_t>(1, total_steps));
  const double regrow = cfg_.regrow_fraction * (1.0 - progress);
  prune_and_regrow(layers, target, regrow);
}

void GraNetPruner::prune_and_regrow(const std::vector<QLayer*>& layers,
                                    double target, double regrow_frac) {
  // 1. Global magnitude pruning to the target sparsity.
  MagnitudePruner mag;
  mag.apply(layers, target);
  if (regrow_frac <= 0.0) return;

  // 2. Neuroregeneration per layer: revive the pruned positions with the
  //    largest gradient magnitude; kill the same number of the smallest
  //    alive weights to keep sparsity constant.
  for (QLayer* l : layers) {
    const Tensor* mask = l->mask();
    if (mask == nullptr) continue;
    Tensor m = *mask;
    const Tensor& w = l->weight_param().value;
    const Tensor& g = l->weight_param().grad;
    if (!g.same_shape(w)) continue;

    std::vector<std::int64_t> pruned, alive;
    for (std::int64_t i = 0; i < m.numel(); ++i) {
      (m[i] == 0.0F ? pruned : alive).push_back(i);
    }
    const auto k = static_cast<std::size_t>(
        regrow_frac * static_cast<double>(pruned.size()));
    if (k == 0 || alive.size() < k) continue;

    std::partial_sort(pruned.begin(), pruned.begin() + static_cast<std::ptrdiff_t>(k),
                      pruned.end(), [&](std::int64_t a, std::int64_t b) {
                        return std::fabs(g[a]) > std::fabs(g[b]);
                      });
    std::partial_sort(alive.begin(), alive.begin() + static_cast<std::ptrdiff_t>(k),
                      alive.end(), [&](std::int64_t a, std::int64_t b) {
                        return std::fabs(w[a]) < std::fabs(w[b]);
                      });
    for (std::size_t i = 0; i < k; ++i) {
      m[pruned[i]] = 1.0F;  // regrow
      m[alive[i]] = 0.0F;   // compensate
    }
    l->set_mask(std::move(m));
  }
}

}  // namespace t2c
