#include "tensor/tensor.h"

#include <cmath>

namespace t2c {

std::string shape_str(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

ITensor to_int(const Tensor& x) {
  ITensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = static_cast<std::int64_t>(std::nearbyintf(x[i]));
  }
  return out;
}

Tensor to_float(const ITensor& x) {
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = static_cast<float>(x[i]);
  }
  return out;
}

}  // namespace t2c
