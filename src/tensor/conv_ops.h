// 2-D convolution kernels via im2col, with grouped / depthwise support and
// an integer-only twin of the forward pass for the deployment path.
//
// Layouts: activations NCHW, weights [OC, IC/groups, KH, KW].
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace t2c {

/// Static description of a convolution. `groups == in_channels ==
/// out_channels` gives the depthwise convolution used by MobileNet-V1.
struct ConvSpec {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  int kernel = 3;      ///< square kernel (KH == KW)
  int stride = 1;
  int padding = 0;
  int groups = 1;

  std::int64_t out_hw(std::int64_t in_hw) const {
    return (in_hw + 2 * padding - kernel) / stride + 1;
  }
  /// Validates divisibility constraints; throws on violation.
  void validate() const;
};

/// Unfolds one sample's group-slice into a [ICg*K*K, OH*OW] patch matrix.
/// `x` is the full NCHW tensor; `n` selects the sample, `g` the group.
Tensor im2col(const Tensor& x, const ConvSpec& spec, std::int64_t n,
              int g);

/// Folds a patch-matrix gradient back into an NCHW gradient (accumulates
/// into `grad_x` at sample `n`, group `g`). Inverse of im2col for backprop.
void col2im_accum(const Tensor& cols, const ConvSpec& spec, std::int64_t n,
                  int g, Tensor& grad_x);

/// Forward convolution: x [N,IC,H,W] * w [OC,ICg,K,K] (+ optional bias [OC])
/// -> [N,OC,OH,OW].
Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor* bias,
                      const ConvSpec& spec);

/// Gradient w.r.t. the input given upstream grad [N,OC,OH,OW].
Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& w,
                             const ConvSpec& spec, const Shape& x_shape);

/// Gradient w.r.t. the weights (and bias if grad_bias != nullptr).
Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& x,
                              const ConvSpec& spec, Tensor* grad_bias);

/// Integer-only forward: int operands, int64 accumulation, optional int
/// bias added to every output position of channel oc. This is the MAC-array
/// semantics the deploy graph and the RTL testbench share.
ITensor iconv2d_forward(const ITensor& x, const ITensor& w,
                        const ITensor* bias, const ConvSpec& spec);

/// Integer im2col into caller-owned int16 scratch `cols` ([ICg*K*K,
/// OH*OW] flattened, resized as needed) — the patch matrix the packed
/// int8 conv kernel consumes (tensor/int8_gemm.h). The narrowing cast is
/// lossless only when the planner's value-range analysis proved the
/// activations fit int16; callers must check that first.
void im2col_i16(const ITensor& x, const ConvSpec& spec, std::int64_t n,
                int g, std::vector<std::int16_t>& cols);

}  // namespace t2c
