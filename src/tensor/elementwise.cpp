#include "tensor/elementwise.h"

#include <algorithm>
#include <cmath>

namespace t2c {

namespace {

void check_same(const Tensor& a, const Tensor& b, const char* op) {
  check(a.same_shape(b), std::string(op) + ": shape mismatch " +
                             shape_str(a.shape()) + " vs " +
                             shape_str(b.shape()));
}

template <typename F>
Tensor binary(const Tensor& a, const Tensor& b, const char* op, F f) {
  check_same(a, b, op);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = f(pa[i], pb[i]);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary(a, b, "add", [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary(a, b, "sub", [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary(a, b, "mul", [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary(a, b, "div", [](float x, float y) { return x / y; });
}

void add_(Tensor& a, const Tensor& b) {
  check_same(a, b, "add_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}
void sub_(Tensor& a, const Tensor& b) {
  check_same(a, b, "sub_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] -= pb[i];
}
void mul_(Tensor& a, const Tensor& b) {
  check_same(a, b, "mul_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] *= pb[i];
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out = a;
  add_scalar_(out, s);
  return out;
}
Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out = a;
  mul_scalar_(out, s);
  return out;
}
void add_scalar_(Tensor& a, float s) {
  float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) p[i] += s;
}
void mul_scalar_(Tensor& a, float s) {
  float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) p[i] *= s;
}

void axpy_(Tensor& a, float s, const Tensor& b) {
  check_same(a, b, "axpy_");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) pa[i] += s * pb[i];
}

Tensor apply(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = f(a[i]);
  return out;
}

void apply_(Tensor& a, const std::function<float(float)>& f) {
  float* p = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) p[i] = f(p[i]);
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = std::min(hi, std::max(lo, a[i]));
  }
  return out;
}

Tensor scale_bias_nchw(const Tensor& x, const Tensor& scale,
                       const Tensor& bias) {
  check(x.rank() == 4, "scale_bias_nchw expects NCHW");
  const std::int64_t n = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
  check(scale.numel() == c && bias.numel() == c,
        "scale_bias_nchw: scale/bias must have C entries");
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const float s = scale[ic], b = bias[ic];
      const std::int64_t base = (in * c + ic) * hw;
      for (std::int64_t i = 0; i < hw; ++i) po[base + i] = px[base + i] * s + b;
    }
  }
  return out;
}

Tensor scale_bias_lastdim(const Tensor& x, const Tensor& scale,
                          const Tensor& bias) {
  check(x.rank() >= 1, "scale_bias_lastdim on scalar");
  const std::int64_t d = x.size(x.rank() - 1);
  check(scale.numel() == d && bias.numel() == d,
        "scale_bias_lastdim: scale/bias must match last dim");
  Tensor out(x.shape());
  const std::int64_t rows = x.numel() / d;
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t base = r * d;
    for (std::int64_t i = 0; i < d; ++i) {
      po[base + i] = px[base + i] * scale[i] + bias[i];
    }
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  check(a.rank() == 2, "transpose2d expects rank-2");
  const std::int64_t m = a.size(0), n = a.size(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  }
  return out;
}

Tensor cat0(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "cat0 of zero tensors");
  Shape s = parts.front().shape();
  check(!s.empty(), "cat0 on scalar tensors");
  std::int64_t total0 = 0;
  for (const auto& p : parts) {
    check(p.rank() == parts.front().rank(), "cat0: rank mismatch");
    for (int d = 1; d < p.rank(); ++d) {
      check(p.size(d) == parts.front().size(d), "cat0: trailing dim mismatch");
    }
    total0 += p.size(0);
  }
  s[0] = total0;
  Tensor out(std::move(s));
  std::int64_t off = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), out.data() + off);
    off += p.numel();
  }
  return out;
}

double sse(const Tensor& a, const Tensor& b) {
  check_same(a, b, "sse");
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  check_same(a, b, "max_abs_diff");
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

float max_abs(const Tensor& a) {
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

}  // namespace t2c
