#include "tensor/int8_gemm.h"

#include <algorithm>
#include <type_traits>

#include "core/parallel.h"
#include "util/cpuinfo.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define T2C_I8_AVX2 1
#include <immintrin.h>
#else
#define T2C_I8_AVX2 0
#endif

namespace t2c {

namespace i8 {

namespace {

// Per-CPU dispatch for the scalar micro-kernel, same contract as
// matmul.cpp: GCC clones for the wider SIMD levels and resolves via ifunc
// at load time, so every thread runs the same clone and the thread-count
// determinism contract is untouched. Sanitized builds skip the clones.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define T2C_MICROKERNEL_SIMD \
  __attribute__((target_clones("default", "arch=haswell", "arch=x86-64-v4")))
#else
#define T2C_MICROKERNEL_SIMD
#endif

/// acc[kMr][kNr] = Apack · Bpanel over k2 depth pairs, int16 lanes into
/// int32 accumulators. Both packs are pair-major ([k2][rows][2]), so every
/// pair step is kMr two-lane broadcasts plus kNr-wide dual multiply-adds —
/// the scalar mirror of vpmaddwd. The caller proved (via accum_fits_i32)
/// that no partial sum leaves int32, so the accumulation never wraps and
/// equals the int64 reference exactly; integer adds are associative, so
/// the pairing order changes nothing.
T2C_MICROKERNEL_SIMD void micro_kernel_i16(const std::int16_t* apack,
                                           const std::int16_t* bpanel,
                                           std::int32_t* acc,
                                           std::int64_t k2) {
  std::int32_t local[kMr][kNr] = {};
  for (std::int64_t p2 = 0; p2 < k2; ++p2) {
    const std::int16_t* bp = bpanel + p2 * kNr * 2;
    const std::int16_t* ap = apack + p2 * kMr * 2;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const auto a0 = static_cast<std::int32_t>(ap[2 * r]);
      const auto a1 = static_cast<std::int32_t>(ap[2 * r + 1]);
      for (std::int64_t j = 0; j < kNr; ++j) {
        local[r][j] += a0 * static_cast<std::int32_t>(bp[2 * j]) +
                       a1 * static_cast<std::int32_t>(bp[2 * j + 1]);
      }
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    for (std::int64_t j = 0; j < kNr; ++j) acc[r * kNr + j] = local[r][j];
  }
}

#if T2C_I8_AVX2
/// vpmaddwd micro-kernel: each madd multiplies 16 int16 lanes and adds
/// adjacent products, yielding a0*b0 + a1*b1 for eight columns — exactly
/// one packed depth pair. The pairwise sum is wrap-free unconditionally
/// (operands are clamped to kOperandMax, and 2 · 32767² < 2^31); the
/// running int32 adds are covered by the caller's accum_fits_i32 proof.
/// Pure integer arithmetic in a fixed order: bit-identical to the scalar
/// kernel at any thread count.
__attribute__((target("avx2"))) void micro_kernel_avx2(
    const std::int16_t* apack, const std::int16_t* bpanel, std::int32_t* acc,
    std::int64_t k2) {
  static_assert(kMr == 4 && kNr == 32, "register tiling assumes 4x32");
  __m256i vacc[kMr][kNr / 8];
  for (auto& row : vacc) {
    for (auto& v : row) v = _mm256_setzero_si256();
  }
  for (std::int64_t p2 = 0; p2 < k2; ++p2) {
    const auto* bp =
        reinterpret_cast<const __m256i*>(bpanel + p2 * kNr * 2);
    const __m256i b0 = _mm256_loadu_si256(bp + 0);
    const __m256i b1 = _mm256_loadu_si256(bp + 1);
    const __m256i b2 = _mm256_loadu_si256(bp + 2);
    const __m256i b3 = _mm256_loadu_si256(bp + 3);
    const std::int16_t* ap = apack + p2 * kMr * 2;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const auto pair = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(static_cast<std::uint16_t>(ap[2 * r])) |
          (static_cast<std::uint32_t>(
               static_cast<std::uint16_t>(ap[2 * r + 1]))
           << 16));
      const __m256i av = _mm256_set1_epi32(pair);
      vacc[r][0] =
          _mm256_add_epi32(vacc[r][0], _mm256_madd_epi16(av, b0));
      vacc[r][1] =
          _mm256_add_epi32(vacc[r][1], _mm256_madd_epi16(av, b1));
      vacc[r][2] =
          _mm256_add_epi32(vacc[r][2], _mm256_madd_epi16(av, b2));
      vacc[r][3] =
          _mm256_add_epi32(vacc[r][3], _mm256_madd_epi16(av, b3));
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    auto* out = reinterpret_cast<__m256i*>(acc + r * kNr);
    for (std::int64_t v = 0; v < kNr / 8; ++v) {
      _mm256_storeu_si256(out + v, vacc[r][v]);
    }
  }
}
/// AVX-512 variant: one 512-bit load covers a full 32-column pair row, so
/// each depth pair is 2 loads + per row (broadcast, 2 madd, 2 add) — half
/// the instruction count of the AVX2 kernel. Same exact integer
/// arithmetic, same wrap-free bounds.
__attribute__((target("avx512bw"))) void micro_kernel_avx512(
    const std::int16_t* apack, const std::int16_t* bpanel, std::int32_t* acc,
    std::int64_t k2) {
  static_assert(kMr == 4 && kNr == 32, "register tiling assumes 4x32");
  __m512i vacc[kMr][kNr / 16];
  for (auto& row : vacc) {
    for (auto& v : row) v = _mm512_setzero_si512();
  }
  for (std::int64_t p2 = 0; p2 < k2; ++p2) {
    const auto* bp =
        reinterpret_cast<const __m512i*>(bpanel + p2 * kNr * 2);
    const __m512i b0 = _mm512_loadu_si512(bp + 0);
    const __m512i b1 = _mm512_loadu_si512(bp + 1);
    const std::int16_t* ap = apack + p2 * kMr * 2;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const auto pair = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(static_cast<std::uint16_t>(ap[2 * r])) |
          (static_cast<std::uint32_t>(
               static_cast<std::uint16_t>(ap[2 * r + 1]))
           << 16));
      const __m512i av = _mm512_set1_epi32(pair);
      vacc[r][0] =
          _mm512_add_epi32(vacc[r][0], _mm512_madd_epi16(av, b0));
      vacc[r][1] =
          _mm512_add_epi32(vacc[r][1], _mm512_madd_epi16(av, b1));
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    auto* out = reinterpret_cast<__m512i*>(acc + r * kNr);
    _mm512_storeu_si512(out + 0, vacc[r][0]);
    _mm512_storeu_si512(out + 1, vacc[r][1]);
  }
}
#endif  // T2C_I8_AVX2

using MicroKernelFn = void (*)(const std::int16_t*, const std::int16_t*,
                               std::int32_t*, std::int64_t);

/// Maps the caller's MicroKernel request onto a function pointer,
/// downgrading to the best variant the CPU tier supports. kAuto picks the
/// widest available — the pre-registry behavior. The resolved pointer is
/// captured once per GEMM call and shared by every worker, so all threads
/// run the same variant and the determinism contract holds; the variants
/// compute identical integer arithmetic anyway, so even a mid-run tier
/// change could not alter the bits.
MicroKernelFn resolve_micro_kernel(MicroKernel mk) {
#if T2C_I8_AVX2
  const util::IsaTier tier = util::cpu_isa_tier();
  if (mk == MicroKernel::kAuto) {
    mk = tier >= util::IsaTier::kAvx512  ? MicroKernel::kAvx512
         : tier >= util::IsaTier::kAvx2 ? MicroKernel::kAvx2
                                         : MicroKernel::kScalar;
  }
  if (mk == MicroKernel::kAvx512 && tier < util::IsaTier::kAvx512) {
    mk = MicroKernel::kAvx2;
  }
  if (mk == MicroKernel::kAvx2 && tier < util::IsaTier::kAvx2) {
    mk = MicroKernel::kScalar;
  }
  if (mk == MicroKernel::kAvx512) return micro_kernel_avx512;
  if (mk == MicroKernel::kAvx2) return micro_kernel_avx2;
#else
  (void)mk;
#endif
  return micro_kernel_i16;
}

std::int64_t clamp64(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return std::min(hi, std::max(lo, v));
}

#if T2C_I8_AVX2
// GCC 12's inliner trips -Wmaybe-uninitialized on the _mm*_maskz_* builtins
// (the masked-off lanes are "uninitialized" by construction); the zeroing
// semantics are architectural, so the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
/// AVX-512 requant writeback for int64 C lanes, 8 columns per step. Every
/// lane op (vpmullq multiply, vpsravq shift, min/max clamp) has the exact
/// 64-bit wrap semantics of the scalar expression, so the emitted bits —
/// and the saturation count — match write_tile verbatim. Tail lanes are
/// masked off before the sat popcount so padding never counts.
__attribute__((target("avx512f,avx512dq,avx512vl"))) void write_tile_avx512(
    const std::int32_t* acc, std::int64_t* c, std::int64_t ldc,
    std::int64_t mr, std::int64_t jn, std::int64_t row0, std::int64_t col0,
    const Epilogue& ep, std::int64_t& sat) {
  if (ep.mode == Epilogue::Mode::kNone) {
    for (std::int64_t r = 0; r < mr; ++r) {
      for (std::int64_t j = 0; j < jn; j += 8) {
        const auto m = static_cast<__mmask8>(
            jn - j >= 8 ? 0xff : (1u << (jn - j)) - 1u);
        const __m256i a = _mm256_maskz_loadu_epi32(m, acc + r * kNr + j);
        _mm512_mask_storeu_epi64(c + r * ldc + j, m,
                                 _mm512_cvtepi32_epi64(a));
      }
    }
    return;
  }
  const __m512i vlo = _mm512_set1_epi64(ep.lo);
  const __m512i vhi = _mm512_set1_epi64(ep.hi);
  const bool check_lo = ep.lo != 0;
  if (ep.mode != Epilogue::Mode::kPerCol) {
    for (std::int64_t r = 0; r < mr; ++r) {
      const auto e = static_cast<std::size_t>(
          ep.mode == Epilogue::Mode::kPerRow ? ep.base + row0 + r : 0);
      const int f = (ep.frac != nullptr ? ep.frac[e] : ep.frac0) +
                    ep.bias_frac;
      const __m512i vmul = _mm512_set1_epi64(ep.mul[e]);
      const __m512i vbias = _mm512_set1_epi64(ep.bias[e]);
      const __m512i vhalf =
          _mm512_set1_epi64(f > 0 ? (std::int64_t{1} << (f - 1)) : 0);
      const __m512i vf = _mm512_set1_epi64(f);
      for (std::int64_t j = 0; j < jn; j += 8) {
        const auto m = static_cast<__mmask8>(
            jn - j >= 8 ? 0xff : (1u << (jn - j)) - 1u);
        const __m512i v = _mm512_cvtepi32_epi64(
            _mm256_maskz_loadu_epi32(m, acc + r * kNr + j));
        const __m512i t = _mm512_add_epi64(
            _mm512_slli_epi64(v, static_cast<unsigned>(ep.bias_frac)),
            vbias);
        const __m512i y = _mm512_srav_epi64(
            _mm512_add_epi64(_mm512_mullo_epi64(t, vmul), vhalf), vf);
        if (ep.count_sat) {
          __mmask8 sm = _mm512_cmpgt_epi64_mask(y, vhi);
          if (check_lo) sm |= _mm512_cmplt_epi64_mask(y, vlo);
          sat += __builtin_popcount(static_cast<unsigned>(sm & m));
        }
        _mm512_mask_storeu_epi64(
            c + r * ldc + j, m,
            _mm512_min_epi64(vhi, _mm512_max_epi64(vlo, y)));
      }
    }
    return;
  }
  // Per-column: the requant entries are contiguous in j, so the constants
  // load as vectors and amortize over the tile's rows.
  for (std::int64_t j = 0; j < jn; j += 8) {
    const auto m = static_cast<__mmask8>(
        jn - j >= 8 ? 0xff : (1u << (jn - j)) - 1u);
    const std::size_t e0 = static_cast<std::size_t>(ep.base + col0 + j);
    const __m512i vmul = _mm512_maskz_loadu_epi64(m, ep.mul + e0);
    const __m512i vbias = _mm512_maskz_loadu_epi64(m, ep.bias + e0);
    const __m512i vf = _mm512_add_epi64(
        ep.frac != nullptr
            ? _mm512_cvtepi32_epi64(
                  _mm256_maskz_loadu_epi32(m, ep.frac + e0))
            : _mm512_set1_epi64(ep.frac0),
        _mm512_set1_epi64(ep.bias_frac));
    const __mmask8 pos = _mm512_cmpgt_epi64_mask(vf, _mm512_setzero_si512());
    const __m512i vhalf = _mm512_maskz_sllv_epi64(
        pos, _mm512_set1_epi64(1),
        _mm512_sub_epi64(vf, _mm512_set1_epi64(1)));
    for (std::int64_t r = 0; r < mr; ++r) {
      const __m512i v = _mm512_cvtepi32_epi64(
          _mm256_maskz_loadu_epi32(m, acc + r * kNr + j));
      const __m512i t = _mm512_add_epi64(
          _mm512_slli_epi64(v, static_cast<unsigned>(ep.bias_frac)), vbias);
      const __m512i y = _mm512_srav_epi64(
          _mm512_add_epi64(_mm512_mullo_epi64(t, vmul), vhalf), vf);
      if (ep.count_sat) {
        __mmask8 sm = _mm512_cmpgt_epi64_mask(y, vhi);
        if (check_lo) sm |= _mm512_cmplt_epi64_mask(y, vlo);
        sat += __builtin_popcount(static_cast<unsigned>(sm & m));
      }
      _mm512_mask_storeu_epi64(
          c + r * ldc + j, m,
          _mm512_min_epi64(vhi, _mm512_max_epi64(vlo, y)));
    }
  }
}

#pragma GCC diagnostic pop

/// The AVX-512 writeback is bit-identical to the scalar expression, so it
/// engages on tier alone (the micro-kernel choice does not constrain it).
bool avx512_epilogue() {
  return util::cpu_isa_tier() >= util::IsaTier::kAvx512;
}
#endif

/// Writes one accumulator tile into C, applying the fused requant. The
/// fixed-point expression is MulQuantOp::compute verbatim (including the
/// ReLU exemption in the clip count: a zero floor is activation
/// semantics, not saturation), so a fused run emits the exact bits the
/// separate GEMM + MulQuant pair would.
template <typename OutT>
void write_tile(const std::int32_t* acc, OutT* c, std::int64_t ldc,
                std::int64_t mr, std::int64_t jn, std::int64_t row0,
                std::int64_t col0, const Epilogue& ep, std::int64_t& sat) {
#if T2C_I8_AVX2
  if constexpr (std::is_same_v<OutT, std::int64_t>) {
    if (avx512_epilogue()) {
      write_tile_avx512(acc, c, ldc, mr, jn, row0, col0, ep, sat);
      return;
    }
  }
#endif
  if (ep.mode == Epilogue::Mode::kNone) {
    for (std::int64_t r = 0; r < mr; ++r) {
      for (std::int64_t j = 0; j < jn; ++j) {
        c[r * ldc + j] = static_cast<OutT>(acc[r * kNr + j]);
      }
    }
    return;
  }
  if (ep.mode != Epilogue::Mode::kPerCol) {
    // Scalar / per-row: one requant entry covers a whole output row, so
    // the fixed-point constants hoist out of the column loop.
    for (std::int64_t r = 0; r < mr; ++r) {
      const auto e = static_cast<std::size_t>(
          ep.mode == Epilogue::Mode::kPerRow ? ep.base + row0 + r : 0);
      const int f = (ep.frac != nullptr ? ep.frac[e] : ep.frac0) +
                    ep.bias_frac;
      const std::int64_t half = f > 0 ? (std::int64_t{1} << (f - 1)) : 0;
      const std::int64_t mul_e = ep.mul[e];
      const std::int64_t bias_e = ep.bias[e];
      for (std::int64_t j = 0; j < jn; ++j) {
        const auto v = static_cast<std::int64_t>(acc[r * kNr + j]);
        const std::int64_t y =
            (mul_e * ((v << ep.bias_frac) + bias_e) + half) >> f;
        if (ep.count_sat && (y > ep.hi || (ep.lo != 0 && y < ep.lo))) ++sat;
        c[r * ldc + j] = static_cast<OutT>(clamp64(y, ep.lo, ep.hi));
      }
    }
    return;
  }
  // Per-column: walk columns in the outer loop so each entry's constants
  // amortize over the tile's rows.
  for (std::int64_t j = 0; j < jn; ++j) {
    const auto e = static_cast<std::size_t>(ep.base + col0 + j);
    const int f = (ep.frac != nullptr ? ep.frac[e] : ep.frac0) +
                  ep.bias_frac;
    const std::int64_t half = f > 0 ? (std::int64_t{1} << (f - 1)) : 0;
    const std::int64_t mul_e = ep.mul[e];
    const std::int64_t bias_e = ep.bias[e];
    for (std::int64_t r = 0; r < mr; ++r) {
      const auto v = static_cast<std::int64_t>(acc[r * kNr + j]);
      const std::int64_t y =
          (mul_e * ((v << ep.bias_frac) + bias_e) + half) >> f;
      if (ep.count_sat && (y > ep.hi || (ep.lo != 0 && y < ep.lo))) ++sat;
      c[r * ldc + j] = static_cast<OutT>(clamp64(y, ep.lo, ep.hi));
    }
  }
}

/// Packs columns [j0, j0 + jn) of a row-major B (all k rows) into a
/// pair-major kNr-wide int16 panel ([k2][kNr][2]), zero-padded on the
/// right edge and on an odd-k tail. ST is the caller's lane type (int64
/// graph values or int16 im2col scratch); narrowing is safe by the
/// caller's int16 operand proof.
template <typename ST>
void pack_b_panel_i16(const ST* b, std::int16_t* dst, std::int64_t k,
                      std::int64_t jn, std::int64_t b_rs, std::int64_t b_cs,
                      std::int64_t j0) {
  const std::int64_t k2 = (k + 1) / 2;
  for (std::int64_t p2 = 0; p2 < k2; ++p2) {
    const std::int64_t p = 2 * p2;
    const ST* src0 = b + p * b_rs + j0 * b_cs;
    const ST* src1 = p + 1 < k ? src0 + b_rs : nullptr;
    std::int16_t* row = dst + p2 * kNr * 2;
    for (std::int64_t j = 0; j < jn; ++j) {
      row[2 * j] = static_cast<std::int16_t>(src0[j * b_cs]);
      row[2 * j + 1] =
          src1 != nullptr ? static_cast<std::int16_t>(src1[j * b_cs])
                          : std::int16_t{0};
    }
    for (std::int64_t j = jn; j < kNr; ++j) {
      row[2 * j] = 0;
      row[2 * j + 1] = 0;
    }
  }
}

/// Interleaved pair-major A pack of one kMr row block ([k2][kMr][2]),
/// edge rows and an odd-k tail zero-filled. AT is the caller's lane type.
template <typename AT>
void pack_a_block_i16(const AT* a, std::int16_t* apack, std::int64_t i0,
                      std::int64_t mr, std::int64_t k) {
  const std::int64_t k2 = (k + 1) / 2;
  for (std::int64_t p2 = 0; p2 < k2; ++p2) {
    const std::int64_t p = 2 * p2;
    std::int16_t* ap = apack + p2 * kMr * 2;
    for (std::int64_t r = 0; r < mr; ++r) {
      const AT* src = a + (i0 + r) * k + p;
      ap[2 * r] = static_cast<std::int16_t>(src[0]);
      ap[2 * r + 1] =
          p + 1 < k ? static_cast<std::int16_t>(src[1]) : std::int16_t{0};
    }
    for (std::int64_t r = mr; r < kMr; ++r) {
      ap[2 * r] = 0;
      ap[2 * r + 1] = 0;
    }
  }
}

template <typename AT, typename OutT>
void gemm_b_packed_impl(const AT* a, const PackedB& pb, OutT* c,
                        std::int64_t m, const Epilogue& ep, bool threaded,
                        MicroKernel mk) {
  const MicroKernelFn kf = resolve_micro_kernel(mk);
  const std::int64_t k = pb.k;
  const std::int64_t k2 = pb.k2;
  const std::int64_t n = pb.n;
  const std::int64_t mblocks = (m + kMr - 1) / kMr;
  const auto row_blocks = [&](std::int64_t ib0, std::int64_t ib1) {
    std::vector<std::int16_t> apack(static_cast<std::size_t>(kMr * k2 * 2));
    std::int32_t acc[kMr * kNr];
    std::int64_t sat = 0;
    for (std::int64_t ib = ib0; ib < ib1; ++ib) {
      const std::int64_t i0 = ib * kMr;
      const std::int64_t mr = std::min(kMr, m - i0);
      pack_a_block_i16(a, apack.data(), i0, mr, k);
      for (std::int64_t jp = 0; jp < pb.npanels; ++jp) {
        kf(apack.data(), pb.panels.data() + jp * k2 * kNr * 2, acc, k2);
        write_tile(acc, c + i0 * n + jp * kNr, n, mr,
                   std::min(kNr, n - jp * kNr), i0, jp * kNr, ep, sat);
      }
    }
    if (ep.sat != nullptr && sat != 0) {
      ep.sat->fetch_add(sat, std::memory_order_relaxed);
    }
  };
  if (threaded) {
    par::parallel_for(0, mblocks, 1, row_blocks);
  } else {
    row_blocks(0, mblocks);
  }
}

template <typename BT>
void gemm_a_packed_impl(const PackedA& pa, std::int64_t group, const BT* b,
                        std::int64_t* c, std::int64_t n, const Epilogue& ep,
                        bool threaded, MicroKernel mk) {
  const MicroKernelFn kf = resolve_micro_kernel(mk);
  const std::int64_t k = pa.k;
  const std::int64_t k2 = pa.k2;
  const std::int64_t m = pa.m;
  const std::int64_t npanels = (n + kNr - 1) / kNr;
  std::vector<std::int16_t> packed(
      static_cast<std::size_t>(npanels * k2 * kNr * 2));
  const auto pack = [&](std::int64_t jp0, std::int64_t jp1) {
    for (std::int64_t jp = jp0; jp < jp1; ++jp) {
      pack_b_panel_i16(b, packed.data() + jp * k2 * kNr * 2, k,
                       std::min(kNr, n - jp * kNr), n, 1, jp * kNr);
    }
  };
  const auto row_blocks = [&](std::int64_t ib0, std::int64_t ib1) {
    std::int32_t acc[kMr * kNr];
    std::int64_t sat = 0;
    for (std::int64_t ib = ib0; ib < ib1; ++ib) {
      const std::int64_t i0 = ib * kMr;
      const std::int16_t* ablock =
          pa.blocks.data() + (group * pa.mblocks + ib) * k2 * kMr * 2;
      for (std::int64_t jp = 0; jp < npanels; ++jp) {
        kf(ablock, packed.data() + jp * k2 * kNr * 2, acc, k2);
        write_tile(acc, c + i0 * n + jp * kNr, n, std::min(kMr, m - i0),
                   std::min(kNr, n - jp * kNr), i0, jp * kNr, ep, sat);
      }
    }
    if (ep.sat != nullptr && sat != 0) {
      ep.sat->fetch_add(sat, std::memory_order_relaxed);
    }
  };
  if (threaded) {
    par::parallel_for(0, npanels, 1, pack);
    par::parallel_for(0, pa.mblocks, 1, row_blocks);
  } else {
    pack(0, npanels);
    row_blocks(0, pa.mblocks);
  }
}

}  // namespace

bool accum_fits_i32(std::int64_t k, std::int64_t a_max, std::int64_t w_max) {
  if (k <= 0 || a_max < 0 || w_max < 0) return false;
  if (a_max > kOperandMax || w_max > kOperandMax) return false;
  const __int128 bound = static_cast<__int128>(k) * a_max * w_max;
  return bound < (static_cast<__int128>(1) << 31);
}

std::int64_t PackedB::bytes() const {
  return static_cast<std::int64_t>(panels.size() * sizeof(std::int16_t) +
                                   col_offsets.size() * sizeof(std::int32_t));
}

std::shared_ptr<const PackedB> pack_b(const std::int64_t* b, std::int64_t k,
                                      std::int64_t n, bool trans_b) {
  auto pb = std::make_shared<PackedB>();
  pb->k = k;
  pb->n = n;
  pb->npanels = (n + kNr - 1) / kNr;
  pb->k2 = (k + 1) / 2;
  pb->panels.resize(static_cast<std::size_t>(pb->npanels * pb->k2 * kNr * 2));
  pb->col_offsets.resize(static_cast<std::size_t>(n));
  const std::int64_t b_rs = trans_b ? 1 : n;
  const std::int64_t b_cs = trans_b ? k : 1;
  for (std::int64_t jp = 0; jp < pb->npanels; ++jp) {
    pack_b_panel_i16(b, pb->panels.data() + jp * pb->k2 * kNr * 2, k,
                     std::min(kNr, n - jp * kNr), b_rs, b_cs, jp * kNr);
  }
  for (std::int64_t j = 0; j < n; ++j) {
    std::int64_t sum = 0;
    for (std::int64_t p = 0; p < k; ++p) sum += b[p * b_rs + j * b_cs];
    pb->col_offsets[static_cast<std::size_t>(j)] =
        static_cast<std::int32_t>(sum);
  }
  return pb;
}

std::int64_t PackedA::bytes() const {
  return static_cast<std::int64_t>(blocks.size() * sizeof(std::int16_t) +
                                   row_offsets.size() * sizeof(std::int32_t));
}

std::shared_ptr<const PackedA> pack_a(const std::int64_t* a, std::int64_t m,
                                      std::int64_t k, std::int64_t groups) {
  auto pa = std::make_shared<PackedA>();
  pa->m = m;
  pa->k = k;
  pa->groups = groups;
  pa->mblocks = (m + kMr - 1) / kMr;
  pa->k2 = (k + 1) / 2;
  pa->blocks.resize(
      static_cast<std::size_t>(groups * pa->mblocks * pa->k2 * kMr * 2));
  pa->row_offsets.resize(static_cast<std::size_t>(groups * m));
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int64_t* ag = a + g * m * k;
    for (std::int64_t ib = 0; ib < pa->mblocks; ++ib) {
      const std::int64_t i0 = ib * kMr;
      pack_a_block_i16(
          ag,
          pa->blocks.data() + (g * pa->mblocks + ib) * pa->k2 * kMr * 2, i0,
          std::min(kMr, m - i0), k);
    }
    for (std::int64_t r = 0; r < m; ++r) {
      std::int64_t sum = 0;
      for (std::int64_t p = 0; p < k; ++p) sum += ag[r * k + p];
      pa->row_offsets[static_cast<std::size_t>(g * m + r)] =
          static_cast<std::int32_t>(sum);
    }
  }
  return pa;
}

void gemm_b_packed(const std::int64_t* a, const PackedB& pb, std::int64_t* c,
                   std::int64_t m, const Epilogue& ep, bool threaded,
                   MicroKernel mk) {
  gemm_b_packed_impl(a, pb, c, m, ep, threaded, mk);
}

void gemm_b_packed(const std::int64_t* a, const PackedB& pb, std::int16_t* c,
                   std::int64_t m, const Epilogue& ep, bool threaded,
                   MicroKernel mk) {
  gemm_b_packed_impl(a, pb, c, m, ep, threaded, mk);
}

void gemm_b_packed(const std::int16_t* a, const PackedB& pb, std::int64_t* c,
                   std::int64_t m, const Epilogue& ep, bool threaded,
                   MicroKernel mk) {
  gemm_b_packed_impl(a, pb, c, m, ep, threaded, mk);
}

void gemm_a_packed(const PackedA& pa, std::int64_t group,
                   const std::int64_t* b, std::int64_t* c, std::int64_t n,
                   const Epilogue& ep, bool threaded, MicroKernel mk) {
  gemm_a_packed_impl(pa, group, b, c, n, ep, threaded, mk);
}

void gemm_a_packed(const PackedA& pa, std::int64_t group,
                   const std::int16_t* b, std::int64_t* c, std::int64_t n,
                   const Epilogue& ep, bool threaded, MicroKernel mk) {
  gemm_a_packed_impl(pa, group, b, c, n, ep, threaded, mk);
}

}  // namespace i8

}  // namespace t2c
