// Kernel-solver registry with per-shape autotuning (DESIGN.md §3.12).
//
// Every kernel choice in the toolkit — naive vs tiled GEMM, the int8
// packed paths and their micro-kernel width, fused vs separate requant,
// the attention int16 fast path — used to be hand-wired at its call site.
// This MIOpen-style registry replaces all of that with one mechanism:
//
//   Problem  — the selection key: op kind, GEMM/conv geometry, operand
//              bounds from value-range analysis, epilogue availability,
//              ISA tier, and thread count. Everything a solver's
//              applicability or speed can depend on, nothing else.
//   Solver   — one concrete kernel strategy: an applicability predicate
//              (absorbing the scattered overflow / consumer / layout /
//              ISA gates) plus, for tunable solvers, a serial micro-
//              benchmark the autotuner can time.
//   Registry — ordered per-op solver lists. The list order IS the
//              heuristic: the first applicable solver reproduces the
//              pre-registry static choice exactly. With tuning enabled,
//              problems with >= 2 applicable *tunable* solvers are
//              resolved through the tuning cache instead (exact-match
//              key lookup; --tune full benchmarks misses and persists
//              the winner).
//
// Tuning never changes numerics: only solver sets whose members are
// bit-identical (exact integer arithmetic) are marked tunable. The f32
// solvers reorder float summation and the attention solvers re-gate per
// batch, so those stay heuristic-only.
//
// The tuning cache is a small JSON file keyed by CPU model + build SHA +
// ISA tier; any header mismatch is a keyed miss (the file is ignored,
// never trusted across machines or builds). A corrupt file degrades to
// the heuristic with a warning — it can never fail a run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/int8_gemm.h"
#include "util/cpuinfo.h"

namespace t2c::solver {

/// Which selection list a problem consults. Raw GEMMs are selected per
/// call inside matmul.cpp; the *_int kinds are op-level choices made once
/// per deploy op by pass_select_solvers.
enum class OpKind {
  kGemmF32 = 0,   ///< raw float GEMM (training path, conv im2col)
  kGemmI64 = 1,   ///< raw int64 GEMM (deploy reference path)
  kConvInt = 2,   ///< IntConv2dOp kernel choice
  kLinearInt = 3, ///< IntLinearOp kernel choice
  kAttnInt = 4,   ///< IntAttentionOp kernel choice
};

const char* op_kind_name(OpKind op);

/// The selection key. Dynamic dimensions (batch-dependent rows, conv
/// output pixels) are encoded as -1 and render as '*' in the cache key;
/// the autotuner benchmarks them at a nominal size.
struct Problem {
  OpKind op = OpKind::kGemmF32;
  std::int64_t m = -1, n = -1, k = -1;
  std::int64_t groups = 1;
  /// Value-range bounds feeding the int8 overflow proof (0 = unbounded).
  std::int64_t a_max = 0, w_max = 0;
  /// True when the op's consumer offers a fusable requant epilogue;
  /// `epilogue_reason` carries the decline cause otherwise ("consumer",
  /// "shared", "layout"). The reason is display metadata — it is NOT
  /// part of the cache key.
  bool epilogue = false;
  std::string epilogue_reason;
  /// Op-specific static precondition (attention: the bound-independent
  /// int16 eligibility checks). Part of the key.
  bool aux_ok = false;
  util::IsaTier isa = util::cpu_isa_tier();
  int threads = 1;

  /// Canonical cache-key string, e.g.
  /// "conv_int|m16|n*|k144|g1|a127|w7|e1|x0|avx512|t4".
  std::string key() const;
};

/// The outcome of a selection, stored on deploy ops and rendered by
/// kernel()/plan dumps. `name` is the registry solver name (the one
/// source of truth for plan-dump/bench kernel tags); `reason` is the
/// first gate that declined a preferred solver ("overflow", "consumer",
/// ...), preserved so kernel() can render "gemm_i64(overflow)".
struct SolverChoice {
  std::string name;
  int variant = 0;  ///< Solver::variant of the pick
  bool i8 = false;
  bool fuse = false;
  i8::MicroKernel mk = i8::MicroKernel::kAuto;
  bool tuned = false;  ///< true when the pick came from the tuning cache
  std::string reason;
};

/// One concrete kernel strategy.
struct Solver {
  std::string name;  ///< stable tag, grammar [a-z0-9_]+ (json_check --bench)
  OpKind op = OpKind::kGemmF32;
  /// Strategy discriminator the call site dispatches on: raw GEMMs use
  /// 0 = tiled / 1 = naive; int8 solvers store the MicroKernel value.
  int variant = 0;
  bool i8 = false;
  bool fuse = false;
  /// Tunable solvers are bit-identical alternatives the autotuner may
  /// reorder; non-tunable ones are only ever picked by list order.
  bool tunable = false;
  std::string gates;  ///< human-readable applicability summary (--list-solvers)
  /// Returns "" when applicable, else a short decline reason.
  std::function<std::string(const Problem&)> applicable;
  /// Serial micro-benchmark: median-free best-of-reps milliseconds for
  /// this solver on (a nominal instantiation of) the problem. Only set
  /// on tunable solvers. Must run kernels with threaded=false — the
  /// registry may hold its lock while timing.
  std::function<double(const Problem&)> bench;
};

/// off: static list order only, cache neither read nor written.
/// heuristic (default): static order, but exact-match hits from a loaded
///   cache override it — zero benchmarking, zero per-run overhead.
/// full: heuristic + benchmark cache misses and persist the winners.
enum class TuneMode { kOff = 0, kHeuristic = 1, kFull = 2 };

struct TuneStats {
  std::int64_t problems = 0;     ///< distinct tunable problems consulted
  std::int64_t hits = 0;         ///< resolved from a pre-loaded cache entry
  std::int64_t benchmarked = 0;  ///< resolved by running the autotuner
};

class Registry {
 public:
  static Registry& instance();

  /// Selects a solver for `p`: first-applicable heuristic, overridden by
  /// the tuning cache per the active TuneMode. Thread-safe; the
  /// heuristic/no-tunables path is lock-free.
  SolverChoice choose(const Problem& p);

  const std::vector<Solver>& solvers() const { return solvers_; }

  void set_mode(TuneMode m) { mode_ = m; }
  TuneMode mode() const { return mode_; }

  /// Loads a tuning cache. Returns true when entries were adopted; a
  /// missing file is a silent false, a corrupt/mismatched file is false
  /// with a human-readable explanation in *warning (heuristic fallback —
  /// never throws). Call before concurrent inference starts.
  bool load_cache(const std::string& path, std::string* warning);

  /// Persists entries gathered by --tune full to `path` (creating parent
  /// directories). No-op unless new entries were benchmarked. Returns
  /// false with *warning set on I/O failure.
  bool save_cache(const std::string& path, std::string* warning);

  TuneStats stats() const;

  /// Drops loaded/benchmarked entries and zeroes stats (test hook; also
  /// lets one process retune after a cap change).
  void reset_tuning();

 private:
  Registry();

  struct Entry {
    std::string solver;
    double ms = 0.0;
  };

  const Solver* find(OpKind op, const std::string& name) const;
  SolverChoice make_choice(const Solver& s, const std::string& reason,
                           bool tuned) const;

  std::vector<Solver> solvers_;
  TuneMode mode_ = TuneMode::kHeuristic;

  struct State;      // entries + stats behind a mutex (solver.cpp)
  State* state_;     // never freed: registry lives for the process
};

/// `$T2C_TUNE_CACHE`, else `$XDG_CACHE_HOME/t2c/tuning.json`, else
/// `~/.cache/t2c/tuning.json` (falling back to "t2c_tuning.json" in the
/// working directory when no home directory is resolvable).
std::string default_cache_path();

}  // namespace t2c::solver
