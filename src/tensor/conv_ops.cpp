#include "tensor/conv_ops.h"

#include <algorithm>

#include "core/parallel.h"
#include "tensor/matmul.h"

namespace t2c {

void ConvSpec::validate() const {
  check(in_channels > 0 && out_channels > 0, "ConvSpec: channels must be > 0");
  check(kernel > 0 && stride > 0 && padding >= 0, "ConvSpec: bad geometry");
  check(groups > 0 && in_channels % groups == 0 && out_channels % groups == 0,
        "ConvSpec: groups must divide both channel counts");
}

namespace {

struct Geometry {
  std::int64_t h, w, oh, ow, icg, ocg;
};

Geometry geom(const Shape& x_shape, const ConvSpec& s) {
  Geometry g{};
  g.h = x_shape[2];
  g.w = x_shape[3];
  g.oh = s.out_hw(g.h);
  g.ow = s.out_hw(g.w);
  g.icg = s.in_channels / s.groups;
  g.ocg = s.out_channels / s.groups;
  check(g.oh > 0 && g.ow > 0, "conv2d: output size would be non-positive");
  return g;
}

// Generic im2col on raw data; shared by float and integer paths. TDst may
// be narrower than TSrc (the int16 patch scratch of the packed int8 conv)
// when the caller's value-range analysis proved the cast lossless. The
// padding test is hoisted out of the inner loop: the valid ox interval
// [ox_lo, ox_hi) is computed once per (ki, kj) tap, so the interior is a
// branch-free strided copy the compiler can vectorize.
template <typename TSrc, typename TDst>
void im2col_raw(const TSrc* x, const ConvSpec& s, const Geometry& g,
                std::int64_t n, int grp, TDst* cols) {
  const int k = s.kernel;
  const std::int64_t st = s.stride;
  const std::int64_t hw = g.h * g.w;
  const std::int64_t ohw = g.oh * g.ow;
  for (std::int64_t c = 0; c < g.icg; ++c) {
    const std::int64_t ch = grp * g.icg + c;
    const TSrc* plane = x + (n * s.in_channels + ch) * hw;
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj) {
        TDst* crow = cols + ((c * k + ki) * k + kj) * ohw;
        // ix = ox*st + off is in [0, w) iff ox in [ox_lo, ox_hi).
        const std::int64_t off = kj - s.padding;
        std::int64_t ox_lo = off < 0 ? (-off + st - 1) / st : 0;
        std::int64_t ox_hi =
            g.w - 1 - off < 0 ? 0 : (g.w - 1 - off) / st + 1;
        ox_lo = std::min(ox_lo, g.ow);
        ox_hi = std::min(std::max(ox_hi, ox_lo), g.ow);
        for (std::int64_t oy = 0; oy < g.oh; ++oy) {
          const std::int64_t iy = oy * st + ki - s.padding;
          TDst* orow = crow + oy * g.ow;
          if (iy < 0 || iy >= g.h) {
            std::fill(orow, orow + g.ow, TDst{});
            continue;
          }
          const TSrc* irow = plane + iy * g.w + off;
          std::fill(orow, orow + ox_lo, TDst{});
          if (st == 1) {
            for (std::int64_t ox = ox_lo; ox < ox_hi; ++ox) {
              orow[ox] = static_cast<TDst>(irow[ox]);
            }
          } else {
            for (std::int64_t ox = ox_lo; ox < ox_hi; ++ox) {
              orow[ox] = static_cast<TDst>(irow[ox * st]);
            }
          }
          std::fill(orow + ox_hi, orow + g.ow, TDst{});
        }
      }
    }
  }
}

// Typed dispatch onto the shared GEMM entry points (tensor/matmul.h);
// variant selection (tiled vs naive) happens inside via the solver
// registry.
void gemm_any(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
              bool threaded) {
  gemm_f32(a, b, c, m, n, k, trans_a, trans_b, threaded);
}
void gemm_any(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
              std::int64_t m, std::int64_t n, std::int64_t k, bool trans_a,
              bool trans_b, bool threaded) {
  gemm_i64(a, b, c, m, n, k, trans_a, trans_b, threaded);
}

}  // namespace

Tensor im2col(const Tensor& x, const ConvSpec& spec, std::int64_t n, int g) {
  spec.validate();
  check(x.rank() == 4 && x.size(1) == spec.in_channels,
        "im2col: input must be NCHW with matching channels");
  const Geometry gm = geom(x.shape(), spec);
  Tensor cols({gm.icg * spec.kernel * spec.kernel, gm.oh * gm.ow});
  im2col_raw(x.data(), spec, gm, n, g, cols.data());
  return cols;
}

void im2col_i16(const ITensor& x, const ConvSpec& spec, std::int64_t n,
                int g, std::vector<std::int16_t>& cols) {
  spec.validate();
  check(x.rank() == 4 && x.size(1) == spec.in_channels,
        "im2col_i16: input must be NCHW with matching channels");
  const Geometry gm = geom(x.shape(), spec);
  cols.resize(static_cast<std::size_t>(gm.icg * spec.kernel * spec.kernel
                                       * gm.oh * gm.ow));
  im2col_raw(x.data(), spec, gm, n, g, cols.data());
}

void col2im_accum(const Tensor& cols, const ConvSpec& spec, std::int64_t n,
                  int g, Tensor& grad_x) {
  const Geometry gm = geom(grad_x.shape(), spec);
  const int k = spec.kernel;
  const std::int64_t hw = gm.h * gm.w;
  const std::int64_t ohw = gm.oh * gm.ow;
  check(cols.size(0) == gm.icg * k * k && cols.size(1) == ohw,
        "col2im_accum: cols shape mismatch");
  for (std::int64_t c = 0; c < gm.icg; ++c) {
    const std::int64_t ch = g * gm.icg + c;
    float* plane = grad_x.data() + (n * spec.in_channels + ch) * hw;
    for (int ki = 0; ki < k; ++ki) {
      for (int kj = 0; kj < k; ++kj) {
        const float* crow = cols.data() + ((c * k + ki) * k + kj) * ohw;
        for (std::int64_t oy = 0; oy < gm.oh; ++oy) {
          const std::int64_t iy = oy * spec.stride + ki - spec.padding;
          if (iy < 0 || iy >= gm.h) continue;
          for (std::int64_t ox = 0; ox < gm.ow; ++ox) {
            const std::int64_t ix = ox * spec.stride + kj - spec.padding;
            if (ix < 0 || ix >= gm.w) continue;
            plane[iy * gm.w + ix] += crow[oy * gm.ow + ox];
          }
        }
      }
    }
  }
}

template <typename T>
static TensorT<T> conv_forward_impl(const TensorT<T>& x, const TensorT<T>& w,
                                    const TensorT<T>* bias,
                                    const ConvSpec& spec) {
  spec.validate();
  check(x.rank() == 4, "conv2d: input must be NCHW");
  check(x.size(1) == spec.in_channels, "conv2d: input channel mismatch");
  check(w.rank() == 4 && w.size(0) == spec.out_channels &&
            w.size(1) == spec.in_channels / spec.groups &&
            w.size(2) == spec.kernel && w.size(3) == spec.kernel,
        "conv2d: weight shape mismatch " + shape_str(w.shape()));
  if (bias != nullptr) {
    check(bias->numel() == spec.out_channels, "conv2d: bias size mismatch");
  }
  const Geometry g = geom(x.shape(), spec);
  const std::int64_t n = x.size(0);
  const std::int64_t ohw = g.oh * g.ow;
  const std::int64_t kk = g.icg * spec.kernel * spec.kernel;
  TensorT<T> out({n, spec.out_channels, g.oh, g.ow});
  // Parallel over (image, group); the im2col scratch is allocated once per
  // worker and reused across its tasks. Each task owns a disjoint output
  // slice and the GEMM accumulates K in fixed order, so results are
  // bit-identical at any thread count.
  const std::int64_t tasks = n * spec.groups;
  const bool single = tasks == 1;
  par::parallel_for(0, tasks, 1, [&](std::int64_t t0, std::int64_t t1) {
    TensorT<T> cols({kk, ohw});
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t in = t / spec.groups;
      const int grp = static_cast<int>(t % spec.groups);
      im2col_raw(x.data(), spec, g, in, grp, cols.data());
      // W_g [OCg, KK] x cols [KK, OHW] += out slice [OCg, OHW] (zero-init).
      T* oslice =
          out.data() + (in * spec.out_channels + grp * g.ocg) * ohw;
      gemm_any(w.data() + grp * g.ocg * kk, cols.data(), oslice, g.ocg, ohw,
               kk, false, false, /*threaded=*/single);
      if (bias != nullptr) {
        for (std::int64_t oc = 0; oc < g.ocg; ++oc) {
          const T b = (*bias)[grp * g.ocg + oc];
          T* orow = oslice + oc * ohw;
          for (std::int64_t j = 0; j < ohw; ++j) orow[j] += b;
        }
      }
    }
  });
  return out;
}

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor* bias,
                      const ConvSpec& spec) {
  return conv_forward_impl<float>(x, w, bias, spec);
}

ITensor iconv2d_forward(const ITensor& x, const ITensor& w,
                        const ITensor* bias, const ConvSpec& spec) {
  return conv_forward_impl<std::int64_t>(x, w, bias, spec);
}

Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& w,
                             const ConvSpec& spec, const Shape& x_shape) {
  Tensor grad_x(x_shape, 0.0F);
  const Geometry g = geom(x_shape, spec);
  check(grad_out.size(2) == g.oh && grad_out.size(3) == g.ow,
        "conv2d_backward_input: grad_out spatial mismatch");
  const std::int64_t n = grad_out.size(0);
  const std::int64_t ohw = g.oh * g.ow;
  const std::int64_t kk = g.icg * spec.kernel * spec.kernel;
  // Parallel over (image, group): each task scatters into a disjoint set of
  // grad_x channel planes; the cols scratch is hoisted per worker.
  par::parallel_for(
      0, n * spec.groups, 1, [&](std::int64_t t0, std::int64_t t1) {
        Tensor cols({kk, ohw});
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t in = t / spec.groups;
          const int grp = static_cast<int>(t % spec.groups);
          // cols = W_g^T [KK, OCg] x grad_out_g [OCg, OHW]
          cols.zero();
          gemm_any(w.data() + grp * g.ocg * kk,
                   grad_out.data() + (in * spec.out_channels + grp * g.ocg) *
                                         ohw,
                   cols.data(), kk, ohw, g.ocg, /*trans_a=*/true, false,
                   /*threaded=*/false);
          col2im_accum(cols, spec, in, grp, grad_x);
        }
      });
  return grad_x;
}

Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& x,
                              const ConvSpec& spec, Tensor* grad_bias) {
  const Geometry g = geom(x.shape(), spec);
  const std::int64_t n = x.size(0);
  const std::int64_t ohw = g.oh * g.ow;
  const std::int64_t kk = g.icg * spec.kernel * spec.kernel;
  Tensor grad_w({spec.out_channels, g.icg, spec.kernel, spec.kernel}, 0.0F);
  // The (image, group) loop stays serial: grad_w accumulates across images,
  // and a fixed outer order keeps the float reduction deterministic at any
  // thread count (the audit replays this path). Parallelism comes from the
  // tiled GEMM splitting the OCg row blocks.
  Tensor cols({kk, ohw});
  for (std::int64_t in = 0; in < n; ++in) {
    for (int grp = 0; grp < spec.groups; ++grp) {
      im2col_raw(x.data(), spec, g, in, grp, cols.data());
      // grad_W_g [OCg, KK] += grad_out_g [OCg, OHW] x cols^T [OHW, KK]
      gemm_f32(grad_out.data() + (in * spec.out_channels + grp * g.ocg) * ohw,
               cols.data(), grad_w.data() + grp * g.ocg * kk, g.ocg, kk, ohw,
               false, /*trans_b=*/true, /*threaded=*/true);
    }
  }
  if (grad_bias != nullptr) {
    check(grad_bias->numel() == spec.out_channels,
          "conv2d_backward_weight: grad_bias size mismatch");
    par::parallel_for(
        0, spec.out_channels, 4, [&](std::int64_t c0, std::int64_t c1) {
          for (std::int64_t oc = c0; oc < c1; ++oc) {
            float acc = 0.0F;
            for (std::int64_t in = 0; in < n; ++in) {
              const float* grow =
                  grad_out.data() + (in * spec.out_channels + oc) * ohw;
              for (std::int64_t j = 0; j < ohw; ++j) acc += grow[j];
            }
            (*grad_bias)[oc] += acc;
          }
        });
  }
  return grad_w;
}

}  // namespace t2c
