// Reductions and statistics used by normalization layers, observers,
// accuracy evaluation, and pruning scores.
#pragma once

#include <utility>

#include "tensor/tensor.h"

namespace t2c {

double sum(const Tensor& x);
double mean(const Tensor& x);
/// Population variance (divide by N), as used by BatchNorm/LayerNorm.
double variance(const Tensor& x);

float min_value(const Tensor& x);
float max_value(const Tensor& x);
/// (min, max) in a single pass.
std::pair<float, float> min_max(const Tensor& x);

/// Index of the maximum element in a rank-1 tensor (ties -> lowest index).
std::int64_t argmax(const Tensor& x);

/// Row-wise argmax of a [N, C] logits tensor -> N predictions.
std::vector<std::int64_t> argmax_rows(const Tensor& logits);

/// Per-channel (dim-1 of NCHW) mean and variance over N*H*W.
void channel_mean_var(const Tensor& x, Tensor& mean_out, Tensor& var_out);

/// Per-output-channel (dim-0) min/max of a weight tensor flattened per
/// channel. Returns tensors of shape [OC].
void per_channel_min_max(const Tensor& w, Tensor& mn, Tensor& mx);

/// L2 norm of all elements.
double l2_norm(const Tensor& x);

/// Fraction of exactly-zero elements.
double sparsity(const Tensor& x);
double sparsity(const ITensor& x);

}  // namespace t2c
