// Elementwise and simple structural operations on tensors.
//
// Broadcasting is deliberately restricted: same-shape binary ops, scalar
// ops, and explicit channel-wise helpers for NCHW / NTD layouts. This keeps
// every kernel auditable — important when the integer path must match an
// RTL datapath bit-for-bit.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace t2c {

// ---- out-of-place binary (shapes must match) ----
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- in-place (a op= b) ----
void add_(Tensor& a, const Tensor& b);
void sub_(Tensor& a, const Tensor& b);
void mul_(Tensor& a, const Tensor& b);

// ---- scalar ----
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
void add_scalar_(Tensor& a, float s);
void mul_scalar_(Tensor& a, float s);

/// a += s * b  (axpy); shapes must match.
void axpy_(Tensor& a, float s, const Tensor& b);

/// Applies `f` to every element, out-of-place / in-place.
Tensor apply(const Tensor& a, const std::function<float(float)>& f);
void apply_(Tensor& a, const std::function<float(float)>& f);

/// Clamps each element to [lo, hi].
Tensor clamp(const Tensor& a, float lo, float hi);

// ---- channel-wise helpers ----
// NCHW layout: `scale`/`bias` have C entries; applied per channel c.
/// y[n,c,h,w] = x[n,c,h,w] * scale[c] + bias[c]
Tensor scale_bias_nchw(const Tensor& x, const Tensor& scale,
                       const Tensor& bias);
/// y[n,d] = x[n,d] * scale[d] + bias[d]  (rank-2) or last-dim for rank-3.
Tensor scale_bias_lastdim(const Tensor& x, const Tensor& scale,
                          const Tensor& bias);

/// Transposes a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

/// Concatenates rank>=1 tensors along dim 0 (all trailing dims equal).
Tensor cat0(const std::vector<Tensor>& parts);

/// Sum of squared differences — handy in reconstruction losses / tests.
double sse(const Tensor& a, const Tensor& b);

/// Max |a - b| over all elements.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Max |a| over all elements (0 for empty).
float max_abs(const Tensor& a);

}  // namespace t2c
