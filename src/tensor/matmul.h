// Matrix multiplication kernels (float and integer).
//
// The float kernels back the training path (linear layers, attention, and
// the im2col convolution). The integer kernel is the deployment datapath:
// int64 accumulation over integer operands, exactly what a MAC array does.
#pragma once

#include "tensor/tensor.h"

namespace t2c {

/// C[M,N] = op(A) * op(B) with optional transposes.
/// A is [M,K] (or [K,M] if trans_a), B is [K,N] (or [N,K] if trans_b).
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Batched: A [B,M,K] x B [B,K,N] -> [B,M,N], with optional transposes of
/// the trailing two dims.
Tensor bmm(const Tensor& a, const Tensor& b, bool trans_a = false,
           bool trans_b = false);

/// Integer matmul with int64 accumulation: C[M,N] = A[M,K] * B[K,N].
ITensor imatmul(const ITensor& a, const ITensor& b, bool trans_a = false,
                bool trans_b = false);

/// Integer batched matmul, trailing-dim transposes as in bmm().
ITensor ibmm(const ITensor& a, const ITensor& b, bool trans_a = false,
             bool trans_b = false);

// Raw GEMM entry points for kernels that own their output buffer (conv
// im2col product, integer linear): C[M,N] += op(A) * op(B), with C
// pre-initialized by the caller (zeroed or carrying bias). `threaded`
// parallelizes over row blocks and B packing — pass false from call sites
// that already run inside a parallel region. Accumulation over K is always
// ascending and independent of the partition, so integer results are
// bit-identical for any thread count.
//
// Variant selection (tiled vs naive) goes through the solver registry:
// the f32 list is heuristic-only (always tiled — float summation order
// must not change), while the i64 pair is tunable because both variants
// are exact integer arithmetic and therefore bit-identical.
void gemm_f32(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
              bool threaded);
void gemm_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
              std::int64_t m, std::int64_t n, std::int64_t k, bool trans_a,
              bool trans_b, bool threaded);

namespace detail {

// Concrete raw-GEMM variants behind the registry: the cache-blocked tiled
// kernels and the reference triple loops. Call sites should use
// gemm_f32/gemm_i64 above; these exist for the registry's dispatch, the
// autotuner's benchmarks, and bit-identity tests.
void gemm_f32_tiled(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
                    bool threaded);
void gemm_f32_naive(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
                    bool threaded);
void gemm_i64_tiled(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* c, std::int64_t m, std::int64_t n,
                    std::int64_t k, bool trans_a, bool trans_b, bool threaded);
void gemm_i64_naive(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* c, std::int64_t m, std::int64_t n,
                    std::int64_t k, bool trans_a, bool trans_b, bool threaded);

}  // namespace detail

}  // namespace t2c
