// Matrix multiplication kernels (float and integer).
//
// The float kernels back the training path (linear layers, attention, and
// the im2col convolution). The integer kernel is the deployment datapath:
// int64 accumulation over integer operands, exactly what a MAC array does.
#pragma once

#include "tensor/tensor.h"

namespace t2c {

/// C[M,N] = op(A) * op(B) with optional transposes.
/// A is [M,K] (or [K,M] if trans_a), B is [K,N] (or [N,K] if trans_b).
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// Batched: A [B,M,K] x B [B,K,N] -> [B,M,N], with optional transposes of
/// the trailing two dims.
Tensor bmm(const Tensor& a, const Tensor& b, bool trans_a = false,
           bool trans_b = false);

/// Integer matmul with int64 accumulation: C[M,N] = A[M,K] * B[K,N].
ITensor imatmul(const ITensor& a, const ITensor& b, bool trans_a = false,
                bool trans_b = false);

/// Integer batched matmul, trailing-dim transposes as in bmm().
ITensor ibmm(const ITensor& a, const ITensor& b, bool trans_a = false,
             bool trans_b = false);

}  // namespace t2c
