#include "tensor/solver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tensor/matmul.h"
#include "util/build_info.h"
#include "util/jsonlite.h"

namespace t2c::solver {

namespace {

/// Nominal instantiation of a dynamic ('*') dimension for benchmarking:
/// large enough that per-call pack/setup overheads show at their real
/// relative weight, small enough that a full autotune stays sub-second
/// per problem.
constexpr std::int64_t kNominalDim = 256;

std::int64_t dim_or(std::int64_t v, std::int64_t nominal) {
  return v > 0 ? v : nominal;
}

std::string dim_tok(std::int64_t v) {
  return v < 0 ? std::string("*") : std::to_string(v);
}

/// Deterministic operand fill (no global RNG: autotune results must not
/// depend on call order elsewhere in the process).
struct Lcg {
  std::uint64_t s = 0x9e3779b97f4a7c15ULL;
  std::int64_t next(std::int64_t bound) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int64_t>((s >> 33) %
                                     static_cast<std::uint64_t>(2 * bound + 1)) -
           bound;
  }
};

/// Best-of-reps wall time in milliseconds, capped at 3 reps or ~25 ms of
/// measurement per solver (min beats mean against scheduler noise; the
/// perf-regression gate makes the same argument).
template <typename F>
double time_best(F&& run) {
  double best = 1e300;
  double spent = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
    spent += ms;
    if (spent > 25.0) break;
  }
  return best;
}

std::int64_t clamp_bound(std::int64_t v) {
  return std::max<std::int64_t>(1, std::min(v, i8::kOperandMax));
}

/// Separate-requant cost model for un-fused solvers on an epilogue-bearing
/// problem: the real graph would run the MulQuant op over the GEMM output,
/// so the bench adds the same per-element fixed-point sweep to keep the
/// fused/unfused comparison honest.
void requant_sweep(std::vector<std::int64_t>& c) {
  constexpr std::int64_t mul = 16, half = std::int64_t{1} << 7;
  constexpr int f = 8;
  for (auto& v : c) {
    const std::int64_t y = (mul * v + half) >> f;
    v = std::min<std::int64_t>(127, std::max<std::int64_t>(-127, y));
  }
}

double bench_raw_i64(const Problem& p, bool naive) {
  const std::int64_t m = dim_or(p.m, kNominalDim);
  const std::int64_t n = dim_or(p.n, kNominalDim);
  const std::int64_t k = dim_or(p.k, kNominalDim);
  Lcg rng;
  std::vector<std::int64_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int64_t> b(static_cast<std::size_t>(k * n));
  std::vector<std::int64_t> c(static_cast<std::size_t>(m * n));
  for (auto& v : a) v = rng.next(7);
  for (auto& v : b) v = rng.next(7);
  return time_best([&] {
    std::fill(c.begin(), c.end(), std::int64_t{0});
    if (naive) {
      detail::gemm_i64_naive(a.data(), b.data(), c.data(), m, n, k, false,
                             false, /*threaded=*/false);
    } else {
      detail::gemm_i64_tiled(a.data(), b.data(), c.data(), m, n, k, false,
                             false, /*threaded=*/false);
    }
  });
}

/// Linear-shaped int8 bench: prepacked B (weights), int64 activations,
/// scalar requant epilogue when the solver fuses.
double bench_i8_linear(const Problem& p, bool fuse, i8::MicroKernel mk) {
  const std::int64_t m = dim_or(p.m, kNominalDim);
  const std::int64_t n = dim_or(p.n, kNominalDim);
  const std::int64_t k = dim_or(p.k, kNominalDim);
  const std::int64_t amax = clamp_bound(p.a_max);
  const std::int64_t wmax = clamp_bound(p.w_max);
  Lcg rng;
  std::vector<std::int64_t> w(static_cast<std::size_t>(k * n));
  for (auto& v : w) v = rng.next(wmax);
  const auto pb = i8::pack_b(w.data(), k, n, /*trans_b=*/false);
  std::vector<std::int64_t> a(static_cast<std::size_t>(m * k));
  for (auto& v : a) v = rng.next(amax);
  std::vector<std::int64_t> c(static_cast<std::size_t>(m * n));
  const std::int64_t mul[1] = {16};
  const std::int64_t bias[1] = {0};
  i8::Epilogue ep;
  if (fuse) {
    ep.mode = i8::Epilogue::Mode::kScalar;
    ep.mul = mul;
    ep.bias = bias;
    ep.frac0 = 8;
    ep.lo = -127;
    ep.hi = 127;
  }
  return time_best([&] {
    i8::gemm_b_packed(a.data(), *pb, c.data(), m, ep, /*threaded=*/false, mk);
    if (!fuse && p.epilogue) requant_sweep(c);
  });
}

/// Conv-shaped int8 bench: prepacked A (one weight group), int16 im2col
/// scratch as B, per-row requant epilogue when the solver fuses.
double bench_i8_conv(const Problem& p, bool fuse, i8::MicroKernel mk) {
  const std::int64_t m = dim_or(p.m, 16);
  const std::int64_t n = dim_or(p.n, kNominalDim);
  const std::int64_t k = dim_or(p.k, kNominalDim);
  const std::int64_t amax = clamp_bound(p.a_max);
  const std::int64_t wmax = clamp_bound(p.w_max);
  Lcg rng;
  std::vector<std::int64_t> w(static_cast<std::size_t>(m * k));
  for (auto& v : w) v = rng.next(wmax);
  const auto pa = i8::pack_a(w.data(), m, k, /*groups=*/1);
  std::vector<std::int16_t> b(static_cast<std::size_t>(k * n));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.next(amax));
  std::vector<std::int64_t> c(static_cast<std::size_t>(m * n));
  std::vector<std::int64_t> mul(static_cast<std::size_t>(m), 16);
  std::vector<std::int64_t> bias(static_cast<std::size_t>(m), 0);
  i8::Epilogue ep;
  if (fuse) {
    ep.mode = i8::Epilogue::Mode::kPerRow;
    ep.mul = mul.data();
    ep.bias = bias.data();
    ep.frac0 = 8;
    ep.lo = -127;
    ep.hi = 127;
  }
  return time_best([&] {
    i8::gemm_a_packed(*pa, 0, b.data(), c.data(), n, ep, /*threaded=*/false,
                      mk);
    if (!fuse && p.epilogue) requant_sweep(c);
  });
}

}  // namespace

const char* op_kind_name(OpKind op) {
  switch (op) {
    case OpKind::kGemmF32: return "gemm_f32";
    case OpKind::kGemmI64: return "gemm_i64";
    case OpKind::kConvInt: return "conv_int";
    case OpKind::kLinearInt: return "linear_int";
    case OpKind::kAttnInt: return "attn_int";
  }
  return "unknown";
}

std::string Problem::key() const {
  std::ostringstream os;
  os << op_kind_name(op) << "|m" << dim_tok(m) << "|n" << dim_tok(n) << "|k"
     << dim_tok(k) << "|g" << groups << "|a" << a_max << "|w" << w_max << "|e"
     << (epilogue ? 1 : 0) << "|x" << (aux_ok ? 1 : 0) << '|'
     << util::isa_tier_name(isa) << "|t" << threads;
  return os.str();
}

struct Registry::State {
  std::mutex mu;
  std::unordered_map<std::string, Entry> entries;
  /// Keys that came from a loaded file (hit accounting vs. in-run memos).
  std::unordered_set<std::string> loaded_keys;
  /// Distinct tunable problems consulted this run (--tune full only).
  std::unordered_set<std::string> seen;
  std::atomic<bool> loaded{false};
  bool dirty = false;
  std::int64_t problems = 0, hits = 0, benchmarked = 0;
};

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Registry::Registry() : state_(new State()) {
  using util::IsaTier;
  const auto always = [](const Problem&) { return std::string(); };

  // Raw f32 GEMM. Heuristic-only: tiled and naive sum floats in different
  // orders, so swapping them would change bits — the registry never tunes
  // across numerically distinct solvers.
  {
    Solver s;
    s.name = "gemm_f32_tiled";
    s.op = OpKind::kGemmF32;
    s.variant = 0;
    s.gates = "always";
    s.applicable = always;
    solvers_.push_back(std::move(s));
  }
  {
    Solver s;
    s.name = "gemm_f32_naive";
    s.op = OpKind::kGemmF32;
    s.variant = 1;
    s.gates = "always (reference, never preferred)";
    s.applicable = always;
    solvers_.push_back(std::move(s));
  }

  // Raw i64 GEMM. Exact integer arithmetic in ascending-K order on both
  // paths, so they are bit-identical and safely tunable: tiny shapes can
  // beat the tiled path's packing overhead with the naive loop.
  {
    Solver s;
    s.name = "gemm_i64_tiled";
    s.op = OpKind::kGemmI64;
    s.variant = 0;
    s.tunable = true;
    s.gates = "always";
    s.applicable = always;
    s.bench = [](const Problem& p) { return bench_raw_i64(p, false); };
    solvers_.push_back(std::move(s));
  }
  {
    Solver s;
    s.name = "gemm_i64_naive";
    s.op = OpKind::kGemmI64;
    s.variant = 1;
    s.tunable = true;
    s.gates = "always";
    s.applicable = always;
    s.bench = [](const Problem& p) { return bench_raw_i64(p, true); };
    solvers_.push_back(std::move(s));
  }

  // Packed int8 family for conv and linear ops. List order = the PR 8
  // static preference: fused beats unfused, wider micro-kernels beat
  // narrower. Gates check semantics first (overflow proof, then epilogue
  // availability) and ISA last, so a decline reason is never "isa" when
  // the real blocker is the math — and the scalar variants carry no ISA
  // gate at all, keeping the family reachable on any CPU.
  struct Mk {
    const char* suffix;
    IsaTier need;
    i8::MicroKernel mk;
  };
  const Mk kMks[] = {
      {"avx512", IsaTier::kAvx512, i8::MicroKernel::kAvx512},
      {"avx2", IsaTier::kAvx2, i8::MicroKernel::kAvx2},
      {"scalar", IsaTier::kGeneric, i8::MicroKernel::kScalar},
  };
  for (const OpKind op : {OpKind::kConvInt, OpKind::kLinearInt}) {
    const bool conv = op == OpKind::kConvInt;
    for (const bool fuse : {true, false}) {
      for (const Mk& v : kMks) {
        Solver s;
        s.name = std::string("gemm_i8") + (fuse ? "_fused_" : "_") + v.suffix;
        s.op = op;
        s.variant = static_cast<int>(v.mk);
        s.i8 = true;
        s.fuse = fuse;
        s.tunable = true;
        s.gates = std::string("i32 accum proof") +
                  (fuse ? "; fusable requant" : "") +
                  (v.need == IsaTier::kGeneric
                       ? ""
                       : std::string("; ") + util::isa_tier_name(v.need));
        s.applicable = [fuse, need = v.need](const Problem& p) -> std::string {
          if (!i8::accum_fits_i32(p.k, p.a_max, p.w_max)) return "overflow";
          if (fuse && !p.epilogue) {
            return p.epilogue_reason.empty() ? "consumer" : p.epilogue_reason;
          }
          if (p.isa < need) return "isa";
          return "";
        };
        s.bench = [conv, fuse, mk = v.mk](const Problem& p) {
          return conv ? bench_i8_conv(p, fuse, mk)
                      : bench_i8_linear(p, fuse, mk);
        };
        solvers_.push_back(std::move(s));
      }
    }
    Solver f;
    f.name = "gemm_i64";
    f.op = op;
    f.gates = "always (reference path)";
    f.applicable = always;
    solvers_.push_back(std::move(f));
  }

  // Attention. attn_i16 is re-gated per batch at run time (token-count
  // dependent accumulator proof), so the pair stays heuristic-only.
  {
    Solver s;
    s.name = "attn_i16";
    s.op = OpKind::kAttnInt;
    s.variant = 0;
    s.i8 = true;
    s.gates = "bounded operands; i32 accum proof; static i16 preconditions";
    s.applicable = [](const Problem& p) -> std::string {
      if (!p.aux_ok) return "static";
      if (p.a_max <= 0) return "bound";
      if (!i8::accum_fits_i32(p.k, p.a_max, p.w_max)) return "overflow";
      return "";
    };
    solvers_.push_back(std::move(s));
  }
  {
    Solver s;
    s.name = "attn_i64";
    s.op = OpKind::kAttnInt;
    s.variant = 1;
    s.gates = "always (reference path)";
    s.applicable = always;
    solvers_.push_back(std::move(s));
  }
}

SolverChoice Registry::make_choice(const Solver& s, const std::string& reason,
                                   bool tuned) const {
  SolverChoice c;
  c.name = s.name;
  c.variant = s.variant;
  c.i8 = s.i8;
  c.fuse = s.fuse;
  c.mk = s.i8 ? static_cast<i8::MicroKernel>(s.variant)
              : i8::MicroKernel::kAuto;
  c.tuned = tuned;
  c.reason = reason;
  return c;
}

const Solver* Registry::find(OpKind op, const std::string& name) const {
  for (const Solver& s : solvers_) {
    if (s.op == op && s.name == name) return &s;
  }
  return nullptr;
}

SolverChoice Registry::choose(const Problem& p) {
  const Solver* pick = nullptr;
  const Solver* tun[8];
  int ntun = 0;
  std::string first_reason;
  for (const Solver& s : solvers_) {
    if (s.op != p.op) continue;
    const std::string why = s.applicable ? s.applicable(p) : std::string();
    if (!why.empty()) {
      // Only gates ahead of the eventual pick explain the choice.
      if (pick == nullptr && first_reason.empty()) first_reason = why;
      continue;
    }
    if (pick == nullptr) pick = &s;
    if (s.tunable && s.bench && ntun < 8) tun[ntun++] = &s;
  }
  if (pick == nullptr) return SolverChoice{};  // every op has a fallback
  // Fast path — lock-free: tuning disabled, or fewer than two tunable
  // candidates means there is nothing to tune. This is the only path the
  // f32 training GEMMs ever take.
  if (mode_ == TuneMode::kOff || ntun < 2) {
    return make_choice(*pick, first_reason, false);
  }
  State& st = *state_;
  const std::string key = p.key();
  if (mode_ == TuneMode::kHeuristic) {
    // Read-only exact-match lookup. The entry map is immutable once
    // load_cache() publishes `loaded`, so no lock is needed here.
    if (!st.loaded.load(std::memory_order_acquire)) {
      return make_choice(*pick, first_reason, false);
    }
    const auto it = st.entries.find(key);
    if (it != st.entries.end()) {
      for (int i = 0; i < ntun; ++i) {
        if (tun[i]->name == it->second.solver) {
          return make_choice(*tun[i], first_reason, true);
        }
      }
    }
    return make_choice(*pick, first_reason, false);
  }
  // Full mode: cache lookup, benchmark on miss, remember the winner. The
  // lock is held across the benchmark, which is safe because every bench
  // functor runs its kernels with threaded=false — a worker blocked here
  // never waits on the pool the bench would need.
  std::lock_guard<std::mutex> guard(st.mu);
  const bool first_seen = st.seen.insert(key).second;
  if (first_seen) ++st.problems;
  const auto it = st.entries.find(key);
  if (it != st.entries.end()) {
    for (int i = 0; i < ntun; ++i) {
      if (tun[i]->name == it->second.solver) {
        if (first_seen && st.loaded_keys.count(key) != 0) ++st.hits;
        return make_choice(*tun[i], first_reason, true);
      }
    }
    // A cached winner that no longer names an applicable tunable solver
    // (hand-edited or stale file): re-benchmark below.
  }
  double best = 1e300;
  const Solver* best_s = nullptr;
  for (int i = 0; i < ntun; ++i) {
    const double ms = tun[i]->bench(p);
    if (ms < best) {
      best = ms;
      best_s = tun[i];
    }
  }
  st.entries[key] = Entry{best_s->name, best};
  st.dirty = true;
  ++st.benchmarked;
  return make_choice(*best_s, first_reason, true);
}

bool Registry::load_cache(const std::string& path, std::string* warning) {
  std::ifstream is(path);
  if (!is) return false;  // missing file: fresh tune, not an error
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto reject = [&](const std::string& why) {
    if (warning != nullptr) {
      *warning = "tuning cache '" + path + "' ignored: " + why;
    }
    return false;
  };
  jsonlite::JsonValue doc;
  try {
    doc = jsonlite::parse_json(buf.str());
  } catch (const std::exception& e) {
    return reject(std::string("parse error (") + e.what() + ")");
  }
  if (!doc.is_object()) return reject("root is not an object");
  const auto str_field = [&](const char* name) -> const std::string* {
    if (!doc.has(name) || !doc.at(name).is_string()) return nullptr;
    return &doc.at(name).str;
  };
  const std::string* schema = str_field("schema");
  if (schema == nullptr || *schema != "t2c.tune.v1") {
    return reject("unrecognized schema");
  }
  const std::string* cpu = str_field("cpu_model");
  const std::string* sha = str_field("git_sha");
  const std::string* isa = str_field("isa");
  if (cpu == nullptr || sha == nullptr || isa == nullptr) {
    return reject("missing header field");
  }
  const BuildInfo bi = build_info();
  const char* tier = util::isa_tier_name(util::cpu_isa_tier());
  if (*cpu != bi.cpu_model || *sha != bi.git_sha || *isa != tier) {
    return reject("host mismatch (cpu_model/git_sha/isa differ) — retune");
  }
  if (!doc.has("entries") || !doc.at("entries").is_array()) {
    return reject("missing entries array");
  }
  std::unordered_map<std::string, Entry> entries;
  for (const auto& e : doc.at("entries").array) {
    if (!e.is_object() || !e.has("key") || !e.at("key").is_string() ||
        !e.has("solver") || !e.at("solver").is_string() || !e.has("ms") ||
        !e.at("ms").is_number()) {
      return reject("malformed entry");
    }
    entries[e.at("key").str] = Entry{e.at("solver").str, e.at("ms").number};
  }
  State& st = *state_;
  {
    std::lock_guard<std::mutex> guard(st.mu);
    for (const auto& [k, v] : entries) {
      st.entries[k] = v;
      st.loaded_keys.insert(k);
    }
  }
  st.loaded.store(true, std::memory_order_release);
  return true;
}

bool Registry::save_cache(const std::string& path, std::string* warning) {
  State& st = *state_;
  std::lock_guard<std::mutex> guard(st.mu);
  if (!st.dirty) return true;
  std::vector<std::string> keys;
  keys.reserve(st.entries.size());
  for (const auto& [k, v] : st.entries) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  const BuildInfo bi = build_info();
  std::ostringstream os;
  os << "{\"schema\":\"t2c.tune.v1\",\"cpu_model\":\""
     << jsonlite::json_escape(bi.cpu_model) << "\",\"git_sha\":\""
     << jsonlite::json_escape(bi.git_sha) << "\",\"isa\":\""
     << util::isa_tier_name(util::cpu_isa_tier()) << "\",\"entries\":[";
  bool first = true;
  for (const auto& k : keys) {
    const Entry& e = st.entries[k];
    if (!first) os << ',';
    first = false;
    os << "{\"key\":\"" << jsonlite::json_escape(k) << "\",\"solver\":\""
       << jsonlite::json_escape(e.solver) << "\",\"ms\":"
       << jsonlite::json_num(e.ms) << '}';
  }
  os << "]}\n";
  std::error_code ec;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) {
    if (warning != nullptr) {
      *warning = "could not write tuning cache '" + path + "'";
    }
    return false;
  }
  out << os.str();
  if (!out) {
    if (warning != nullptr) {
      *warning = "short write to tuning cache '" + path + "'";
    }
    return false;
  }
  st.dirty = false;
  return true;
}

TuneStats Registry::stats() const {
  State& st = *state_;
  std::lock_guard<std::mutex> guard(st.mu);
  TuneStats t;
  t.problems = st.problems;
  t.hits = st.hits;
  t.benchmarked = st.benchmarked;
  return t;
}

void Registry::reset_tuning() {
  State& st = *state_;
  std::lock_guard<std::mutex> guard(st.mu);
  st.entries.clear();
  st.loaded_keys.clear();
  st.seen.clear();
  st.loaded.store(false, std::memory_order_release);
  st.dirty = false;
  st.problems = st.hits = st.benchmarked = 0;
}

std::string default_cache_path() {
  if (const char* e = std::getenv("T2C_TUNE_CACHE"); e != nullptr && *e != 0) {
    return e;
  }
  if (const char* x = std::getenv("XDG_CACHE_HOME"); x != nullptr && *x != 0) {
    return std::string(x) + "/t2c/tuning.json";
  }
  if (const char* h = std::getenv("HOME"); h != nullptr && *h != 0) {
    return std::string(h) + "/.cache/t2c/tuning.json";
  }
  return "t2c_tuning.json";
}

}  // namespace t2c::solver
