// Int8-native packed GEMM with a fused requant epilogue (DESIGN.md §3.11).
//
// The deploy graph stores every lane as int64, but the PTQ grids bound the
// live values far tighter: activations sit in a clamp window and weights
// on a sub-8-bit grid. Whenever value-range analysis proves the operands
// fit int16 and the K-deep accumulation fits int32 (K · max|a| · max|w| <
// 2^31), the GEMM can run on narrow lanes — FBGEMM-style prepacked weight
// panels, an int16×int16→int32 register-tiled micro-kernel, and the
// consuming MulQuant's fixed-point multiplier + shift + clamp applied
// directly on the accumulators. Integer accumulation is exact, so the
// result is bit-identical to the int64 reference path at any thread count.
//
// Packing layout (pair-interleaved, vpmaddwd-ready):
//   Both packs store the K dimension as k2 = ceil(k / 2) *pairs* of
//   int16 lanes: consecutive depth elements (p, p+1) sit adjacent in
//   memory (odd k zero-pads the tail). One AVX2 `vpmaddwd` then computes
//   a0*b0 + a1*b1 for eight columns at once — two MACs per lane per
//   instruction — and the pairwise int32 sum cannot wrap (2 · 32767² <
//   2^31), so the scalar fallback on the same layout is bit-identical.
//   PackedB — op(B) as pair-major kNr-wide column panels, rows laid out
//             [k2][kNr][2] (weights of a linear layer, packed once at
//             plan-compile time). Per-column sums ride along as the
//             zero-point-correction offsets: with an asymmetric
//             activation grid the term zp_a * col_sum[j] must be
//             subtracted from column j's accumulator. This toolkit's
//             deploy grids are symmetric (zp = 0), so the offsets are
//             stored but the correction contributes nothing at runtime.
//   PackedA — op(A) as kMr-interleaved pair-major row blocks laid out
//             [k2][kMr][2], one block run per group (conv weights
//             [OCg, ICg*K*K]); per-row sums are the matching offsets
//             for an asymmetric B operand.
// The non-prepacked operand (activations / im2col patches) is narrowed
// to int16 on the fly while packing, exactly as matmul.cpp packs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace t2c {

/// Base handle for prepacked operands. Produced once per op by
/// DeployOp::pack_weights() at plan-compile time and cached on the
/// ExecutionPlan, so steady-state runs never repack static weights.
struct PackedWeights {
  PackedWeights() = default;
  PackedWeights(const PackedWeights&) = delete;
  PackedWeights& operator=(const PackedWeights&) = delete;
  virtual ~PackedWeights() = default;

  /// Heap bytes the packed representation holds.
  virtual std::int64_t bytes() const = 0;
};

namespace i8 {

/// Register tile of the int16 micro-kernel: kMr × kNr int32 accumulators.
inline constexpr std::int64_t kMr = 4;
inline constexpr std::int64_t kNr = 32;

/// Largest operand magnitude an int16 lane holds.
inline constexpr std::int64_t kOperandMax = 32767;

/// Which int16 micro-kernel variant a GEMM call runs. kAuto resolves to
/// the best variant the CPU (as capped by util::cpu_isa_tier) supports;
/// an explicit request is likewise downgraded if the hardware lacks it.
/// All variants compute the same exact integer arithmetic, so the choice
/// is purely a performance knob — the solver registry tunes it per shape.
enum class MicroKernel { kAuto = 0, kScalar = 1, kAvx2 = 2, kAvx512 = 3 };

/// True when a K-deep dot product with |a| <= a_max and |w| <= w_max
/// provably fits the narrow kernel: both operands in int16 and every
/// partial int32 sum below 2^31 (the accumulation never wraps, so the
/// widened result equals the int64 reference bit for bit).
bool accum_fits_i32(std::int64_t k, std::int64_t a_max, std::int64_t w_max);

/// Fused requant applied on the int32 accumulators at tile writeback. The
/// arithmetic replicates MulQuantOp::compute exactly:
///   f    = frac[e] + bias_frac          (frac == nullptr: uniform frac0)
///   half = f > 0 ? 1 << (f - 1) : 0
///   y    = (mul[e] * ((acc << bias_frac) + bias[e]) + half) >> f
///   out  = clamp(y, lo, hi)
/// Entry selection: kScalar uses e = 0, kPerRow e = base + output row
/// (conv: base is the group's first channel), kPerCol e = base + output
/// column (token layouts). kNone skips the requant and writes the raw
/// accumulator — the bit-exact drop-in for the i64 GEMM.
struct Epilogue {
  enum class Mode { kNone, kScalar, kPerRow, kPerCol };
  Mode mode = Mode::kNone;
  const std::int64_t* mul = nullptr;
  const std::int64_t* bias = nullptr;
  const int* frac = nullptr;  ///< per-entry shifts; nullptr = uniform frac0
  int frac0 = 0;
  int bias_frac = 0;
  std::int64_t lo = 0, hi = 0;
  std::int64_t base = 0;  ///< entry offset (conv group channel origin)
  /// Saturation telemetry: when `sat` is non-null and `count_sat` is set,
  /// each worker accumulates its clip count locally and adds it once —
  /// an order-independent integer sum, identical at any thread count.
  std::atomic<std::int64_t>* sat = nullptr;
  bool count_sat = false;
};

/// op(B) packed as pair-major kNr-wide column panels (int16 lanes, depth
/// pairs adjacent), plus the per-column zero-point-correction offsets.
struct PackedB final : public PackedWeights {
  std::int64_t k = 0, n = 0, npanels = 0;
  std::int64_t k2 = 0;                    ///< ceil(k / 2) depth pairs
  std::vector<std::int16_t> panels;       ///< npanels * k2 * kNr * 2
  std::vector<std::int32_t> col_offsets;  ///< per column: sum_p B[p][j]
  std::int64_t bytes() const override;
};

/// Packs op(B) [k × n] (row-major int64 source; trans_b reads B^T).
std::shared_ptr<const PackedB> pack_b(const std::int64_t* b, std::int64_t k,
                                      std::int64_t n, bool trans_b);

/// `groups` consecutive A blocks [m × k] packed kMr-interleaved pair-major
/// (conv weights, one block per group), plus per-row offsets.
struct PackedA final : public PackedWeights {
  std::int64_t m = 0, k = 0, groups = 1, mblocks = 0;
  std::int64_t k2 = 0;                    ///< ceil(k / 2) depth pairs
  std::vector<std::int16_t> blocks;       ///< groups * mblocks * k2 * kMr * 2
  std::vector<std::int32_t> row_offsets;  ///< groups * m row sums
  std::int64_t bytes() const override;
};

std::shared_ptr<const PackedA> pack_a(const std::int64_t* a, std::int64_t m,
                                      std::int64_t k, std::int64_t groups);

// C [m × pb.n] = A [m × pb.k] · packed op(B), epilogue applied at
// writeback. A rows are packed (and narrowed) on the fly per kMr row
// block; work splits over row blocks via par::parallel_for when
// `threaded`, and every accumulation is exact integer arithmetic, so
// results are bit-identical at any thread count. Overloads cover the
// deploy data paths: int64 activations in, int64 or int16 out (the int16
// sink requires a clamping epilogue), and int16 scratch in.
void gemm_b_packed(const std::int64_t* a, const PackedB& pb, std::int64_t* c,
                   std::int64_t m, const Epilogue& ep, bool threaded,
                   MicroKernel mk = MicroKernel::kAuto);
void gemm_b_packed(const std::int64_t* a, const PackedB& pb, std::int16_t* c,
                   std::int64_t m, const Epilogue& ep, bool threaded,
                   MicroKernel mk = MicroKernel::kAuto);
void gemm_b_packed(const std::int16_t* a, const PackedB& pb, std::int64_t* c,
                   std::int64_t m, const Epilogue& ep, bool threaded,
                   MicroKernel mk = MicroKernel::kAuto);

/// C [pa.m × n] = packed A block `group` · B [pa.k × n] (row-major,
/// narrowed while packing into column panels — the conv im2col path).
/// The int16 overload takes patch scratch already narrowed by im2col_i16,
/// halving the dominant per-run memory traffic.
void gemm_a_packed(const PackedA& pa, std::int64_t group,
                   const std::int64_t* b, std::int64_t* c, std::int64_t n,
                   const Epilogue& ep, bool threaded,
                   MicroKernel mk = MicroKernel::kAuto);
void gemm_a_packed(const PackedA& pa, std::int64_t group,
                   const std::int16_t* b, std::int64_t* c, std::int64_t n,
                   const Epilogue& ep, bool threaded,
                   MicroKernel mk = MicroKernel::kAuto);

}  // namespace i8

}  // namespace t2c
