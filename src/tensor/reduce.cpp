#include "tensor/reduce.h"

#include <algorithm>
#include <cmath>

namespace t2c {

double sum(const Tensor& x) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) acc += x[i];
  return acc;
}

double mean(const Tensor& x) {
  check(x.numel() > 0, "mean of empty tensor");
  return sum(x) / static_cast<double>(x.numel());
}

double variance(const Tensor& x) {
  check(x.numel() > 0, "variance of empty tensor");
  const double m = mean(x);
  double acc = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const double d = x[i] - m;
    acc += d * d;
  }
  return acc / static_cast<double>(x.numel());
}

float min_value(const Tensor& x) {
  check(x.numel() > 0, "min of empty tensor");
  return *std::min_element(x.data(), x.data() + x.numel());
}

float max_value(const Tensor& x) {
  check(x.numel() > 0, "max of empty tensor");
  return *std::max_element(x.data(), x.data() + x.numel());
}

std::pair<float, float> min_max(const Tensor& x) {
  check(x.numel() > 0, "min_max of empty tensor");
  float mn = x[0], mx = x[0];
  for (std::int64_t i = 1; i < x.numel(); ++i) {
    mn = std::min(mn, x[i]);
    mx = std::max(mx, x[i]);
  }
  return {mn, mx};
}

std::int64_t argmax(const Tensor& x) {
  check(x.numel() > 0, "argmax of empty tensor");
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < x.numel(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  check(logits.rank() == 2, "argmax_rows expects [N, C]");
  const std::int64_t n = logits.size(0), c = logits.size(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

void channel_mean_var(const Tensor& x, Tensor& mean_out, Tensor& var_out) {
  check(x.rank() == 4, "channel_mean_var expects NCHW");
  const std::int64_t n = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
  mean_out = Tensor({c});
  var_out = Tensor({c});
  const double count = static_cast<double>(n * hw);
  check(count > 0, "channel_mean_var: empty batch");
  for (std::int64_t ic = 0; ic < c; ++ic) {
    double s = 0.0, s2 = 0.0;
    for (std::int64_t in = 0; in < n; ++in) {
      const float* plane = x.data() + (in * c + ic) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        s += plane[i];
        s2 += static_cast<double>(plane[i]) * plane[i];
      }
    }
    const double m = s / count;
    mean_out[ic] = static_cast<float>(m);
    var_out[ic] = static_cast<float>(std::max(0.0, s2 / count - m * m));
  }
}

void per_channel_min_max(const Tensor& w, Tensor& mn, Tensor& mx) {
  check(w.rank() >= 2, "per_channel_min_max expects rank >= 2");
  const std::int64_t oc = w.size(0);
  const std::int64_t per = w.numel() / oc;
  mn = Tensor({oc});
  mx = Tensor({oc});
  for (std::int64_t c = 0; c < oc; ++c) {
    const float* row = w.data() + c * per;
    float lo = row[0], hi = row[0];
    for (std::int64_t i = 1; i < per; ++i) {
      lo = std::min(lo, row[i]);
      hi = std::max(hi, row[i]);
    }
    mn[c] = lo;
    mx[c] = hi;
  }
}

double l2_norm(const Tensor& x) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    acc += static_cast<double>(x[i]) * x[i];
  }
  return std::sqrt(acc);
}

double sparsity(const Tensor& x) {
  if (x.numel() == 0) return 0.0;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (x[i] == 0.0F) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(x.numel());
}

double sparsity(const ITensor& x) {
  if (x.numel() == 0) return 0.0;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (x[i] == 0) ++zeros;
  }
  return static_cast<double>(zeros) / static_cast<double>(x.numel());
}

}  // namespace t2c
