// Dense row-major tensor with value semantics.
//
// This is the numerical substrate for the whole toolkit. Two element types
// are used throughout:
//   Tensor  = TensorT<float>        — training / fake-quantized path
//   ITensor = TensorT<std::int64_t> — integer-only deployment path
//
// Design notes (C++ Core Guidelines):
//  * value semantics, moves are cheap (vector steal); no shared mutable state
//  * bounds/shape violations throw t2c::Error via check()
//  * indexing overloads for rank 1-4 avoid variadic overhead in hot loops;
//    flat access via data()/operator[] for kernels.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "util/check.h"

namespace t2c {

using Shape = std::vector<std::int64_t>;

/// Human-readable "[2, 3, 4]" form for error messages.
std::string shape_str(const Shape& shape);

/// Product of all dims (1 for an empty shape = scalar-like usage).
std::int64_t shape_numel(const Shape& shape);

template <typename T>
class TensorT {
 public:
  using value_type = T;

  TensorT() = default;

  /// Allocates a tensor of the given shape, filled with `fill`.
  explicit TensorT(Shape shape, T fill = T{})
      : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {
    for (auto d : shape_) check(d >= 0, "negative dimension in shape");
  }

  /// Adopts existing data; size must match the shape product.
  static TensorT from(Shape shape, std::vector<T> data) {
    check(shape_numel(shape) == static_cast<std::int64_t>(data.size()),
          "TensorT::from: data size does not match shape " + shape_str(shape));
    TensorT t;
    t.shape_ = std::move(shape);
    t.data_ = std::move(data);
    return t;
  }

  const Shape& shape() const { return shape_; }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::int64_t size(int dim) const {
    check_index(dim >= 0 && dim < rank(), "size(): dim out of range", dim);
    return shape_[static_cast<std::size_t>(dim)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& vec() { return data_; }
  const std::vector<T>& vec() const { return data_; }

  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  // Rank-checked multi-dim access (debug-friendly; kernels use flat access).
  T& at(std::int64_t i) { return data_[idx1(i)]; }
  const T& at(std::int64_t i) const { return data_[idx1(i)]; }
  T& at(std::int64_t i, std::int64_t j) { return data_[idx2(i, j)]; }
  const T& at(std::int64_t i, std::int64_t j) const { return data_[idx2(i, j)]; }
  T& at(std::int64_t i, std::int64_t j, std::int64_t k) {
    return data_[idx3(i, j, k)];
  }
  const T& at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[idx3(i, j, k)];
  }
  T& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[idx4(i, j, k, l)];
  }
  const T& at(std::int64_t i, std::int64_t j, std::int64_t k,
              std::int64_t l) const {
    return data_[idx4(i, j, k, l)];
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(T{}); }

  /// Returns a copy viewed under a new shape with equal element count.
  TensorT reshaped(Shape new_shape) const {
    check(shape_numel(new_shape) == numel(),
          "reshaped: element count mismatch " + shape_str(shape_) + " -> " +
              shape_str(new_shape));
    TensorT t = *this;
    t.shape_ = std::move(new_shape);
    return t;
  }

  /// In-place reshape (same element count).
  void reshape(Shape new_shape) {
    check(shape_numel(new_shape) == numel(),
          "reshape: element count mismatch " + shape_str(shape_) + " -> " +
              shape_str(new_shape));
    shape_ = std::move(new_shape);
  }

  /// Copy of slice `i` along dim 0 (shape = shape()[1:]).
  TensorT select0(std::int64_t i) const {
    check(rank() >= 1, "select0 on scalar tensor");
    check_index(i >= 0 && i < shape_[0], "select0: index out of range", i);
    const std::int64_t stride = numel() / shape_[0];
    Shape s(shape_.begin() + 1, shape_.end());
    if (s.empty()) s = {1};
    TensorT out(std::move(s));
    std::copy(data_.begin() + i * stride, data_.begin() + (i + 1) * stride,
              out.data_.begin());
    return out;
  }

  /// Writes `t` into slice `i` along dim 0.
  void set0(std::int64_t i, const TensorT& t) {
    check(rank() >= 1, "set0 on scalar tensor");
    check_index(i >= 0 && i < shape_[0], "set0: index out of range", i);
    const std::int64_t stride = numel() / shape_[0];
    check(t.numel() == stride, "set0: slice element count mismatch");
    std::copy(t.data_.begin(), t.data_.end(), data_.begin() + i * stride);
  }

  bool same_shape(const TensorT& o) const { return shape_ == o.shape_; }

 private:
  std::size_t idx1(std::int64_t i) const {
    check(rank() == 1, "at(i) on rank-" + std::to_string(rank()) + " tensor");
    check_index(i >= 0 && i < shape_[0], "index 0 out of range", i);
    return static_cast<std::size_t>(i);
  }
  std::size_t idx2(std::int64_t i, std::int64_t j) const {
    check(rank() == 2, "at(i,j) on rank-" + std::to_string(rank()) + " tensor");
    check_index(i >= 0 && i < shape_[0], "index 0 out of range", i);
    check_index(j >= 0 && j < shape_[1], "index 1 out of range", j);
    return static_cast<std::size_t>(i * shape_[1] + j);
  }
  std::size_t idx3(std::int64_t i, std::int64_t j, std::int64_t k) const {
    check(rank() == 3,
          "at(i,j,k) on rank-" + std::to_string(rank()) + " tensor");
    check_index(i >= 0 && i < shape_[0], "index 0 out of range", i);
    check_index(j >= 0 && j < shape_[1], "index 1 out of range", j);
    check_index(k >= 0 && k < shape_[2], "index 2 out of range", k);
    return static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k);
  }
  std::size_t idx4(std::int64_t i, std::int64_t j, std::int64_t k,
                   std::int64_t l) const {
    check(rank() == 4,
          "at(i,j,k,l) on rank-" + std::to_string(rank()) + " tensor");
    check_index(i >= 0 && i < shape_[0], "index 0 out of range", i);
    check_index(j >= 0 && j < shape_[1], "index 1 out of range", j);
    check_index(k >= 0 && k < shape_[2], "index 2 out of range", k);
    check_index(l >= 0 && l < shape_[3], "index 3 out of range", l);
    return static_cast<std::size_t>(
        ((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l);
  }

  Shape shape_;
  std::vector<T> data_;
};

using Tensor = TensorT<float>;
using ITensor = TensorT<std::int64_t>;

/// Element-type conversions between the float and integer worlds.
ITensor to_int(const Tensor& x);          ///< round-to-nearest-even per element
Tensor to_float(const ITensor& x);

}  // namespace t2c
