#include "tensor/matmul.h"

#include <algorithm>
#include <vector>

#include "core/parallel.h"
#include "tensor/solver.h"

namespace t2c {

namespace {

// Cache-blocked, register-tiled GEMM with B-panel packing (BLIS-style
// micro-kernel, no MC/KC outer blocking: one packed panel is k*NR elements
// and stays L2-resident for every k this toolkit runs).
//
// op(B) is packed once per call into NR-wide column panels laid out
// k-major, so the micro-kernel streams both operands contiguously and the
// MR x NR accumulator block lives in registers. Work is split over M row
// blocks (parallel when `threaded`); every output element accumulates over
// K in ascending order regardless of the partition, which is what makes
// the integer path bit-identical at any thread count.
template <typename T>
struct Tile;
template <>
struct Tile<float> {
  static constexpr std::int64_t kMr = 4, kNr = 32;
};
template <>
struct Tile<std::int64_t> {
  static constexpr std::int64_t kMr = 4, kNr = 8;
};

// Per-CPU dispatch for the micro-kernel: GCC clones it for the wider SIMD
// levels and selects via ifunc at load time, so the baseline build stays
// portable while AVX2/AVX-512 machines get full-width FMA lanes. Clone
// choice is a per-machine constant — every thread runs the same clone, so
// the thread-count determinism contract is untouched. Sanitized builds
// skip the clones: their runtimes start before ifunc resolvers may run.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define T2C_MICROKERNEL_SIMD \
  __attribute__((target_clones("default", "arch=haswell", "arch=x86-64-v4")))
#else
#define T2C_MICROKERNEL_SIMD
#endif

/// Packs columns [j0, j0 + jn) of op(B) (all K rows) into a k-major NR-wide
/// panel, zero-padded on the right edge.
template <typename T>
void pack_b_panel(const T* b, T* dst, std::int64_t k, std::int64_t jn,
                  std::int64_t b_rs, std::int64_t b_cs, std::int64_t j0) {
  constexpr std::int64_t NR = Tile<T>::kNr;
  for (std::int64_t p = 0; p < k; ++p) {
    const T* src = b + p * b_rs + j0 * b_cs;
    T* row = dst + p * NR;
    for (std::int64_t j = 0; j < jn; ++j) row[j] = src[j * b_cs];
    for (std::int64_t j = jn; j < NR; ++j) row[j] = T{};
  }
}

/// C[mr, jn] += Apack[k, kMr] * Bpanel[k, kNr]. Both packs are k-major
/// (A interleaved kMr-wide, B kNr-wide), so every p-step is kMr broadcast
/// loads plus kNr-wide FMAs over a fixed-size accumulator tile.
template <typename T, typename Acc>
T2C_MICROKERNEL_SIMD void micro_kernel(const T* apack, const T* bpanel,
                                       Acc* c, std::int64_t ldc,
                                       std::int64_t mr, std::int64_t jn,
                                       std::int64_t k) {
  constexpr std::int64_t MR = Tile<T>::kMr;
  constexpr std::int64_t NR = Tile<T>::kNr;
  Acc acc[MR][NR] = {};
  for (std::int64_t p = 0; p < k; ++p) {
    const T* bp = bpanel + p * NR;
    const T* ap = apack + p * MR;
    for (std::int64_t r = 0; r < MR; ++r) {
      const Acc a = static_cast<Acc>(ap[r]);
      for (std::int64_t j = 0; j < NR; ++j) {
        acc[r][j] += a * static_cast<Acc>(bp[j]);
      }
    }
  }
  for (std::int64_t r = 0; r < mr; ++r) {
    for (std::int64_t j = 0; j < jn; ++j) c[r * ldc + j] += acc[r][j];
  }
}

template <typename T, typename Acc>
void gemm_tiled(const T* a, const T* b, Acc* c, std::int64_t m, std::int64_t n,
                std::int64_t k, bool trans_a, bool trans_b, bool threaded) {
  constexpr std::int64_t MR = Tile<T>::kMr;
  constexpr std::int64_t NR = Tile<T>::kNr;
  const std::int64_t a_rs = trans_a ? 1 : k;  // stride between rows of op(A)
  const std::int64_t a_cs = trans_a ? m : 1;  // stride between cols of op(A)
  const std::int64_t b_rs = trans_b ? 1 : n;
  const std::int64_t b_cs = trans_b ? k : 1;
  const std::int64_t npanels = (n + NR - 1) / NR;
  std::vector<T> packed(static_cast<std::size_t>(npanels * k * NR));
  const auto pack = [&](std::int64_t jp0, std::int64_t jp1) {
    for (std::int64_t jp = jp0; jp < jp1; ++jp) {
      pack_b_panel(b, packed.data() + jp * k * NR, k,
                   std::min(NR, n - jp * NR), b_rs, b_cs, jp * NR);
    }
  };
  const std::int64_t mblocks = (m + MR - 1) / MR;
  const auto row_blocks = [&](std::int64_t ib0, std::int64_t ib1) {
    std::vector<T> apack(static_cast<std::size_t>(MR * k));
    for (std::int64_t ib = ib0; ib < ib1; ++ib) {
      const std::int64_t i0 = ib * MR;
      const std::int64_t mr = std::min(MR, m - i0);
      // Interleaved k-major A pack: apack[p*MR + r], edge rows zero-filled.
      for (std::int64_t p = 0; p < k; ++p) {
        T* ap = apack.data() + p * MR;
        for (std::int64_t r = 0; r < mr; ++r) {
          ap[r] = a[(i0 + r) * a_rs + p * a_cs];
        }
        for (std::int64_t r = mr; r < MR; ++r) ap[r] = T{};
      }
      for (std::int64_t jp = 0; jp < npanels; ++jp) {
        micro_kernel<T, Acc>(apack.data(), packed.data() + jp * k * NR,
                             c + i0 * n + jp * NR, n, mr,
                             std::min(NR, n - jp * NR), k);
      }
    }
  };
  if (threaded) {
    par::parallel_for(0, npanels, 1, pack);
    par::parallel_for(0, mblocks, 1, row_blocks);
  } else {
    pack(0, npanels);
    row_blocks(0, mblocks);
  }
}

/// Reference triple loop, C += op(A) * op(B). Each output element
/// accumulates over K ascending — for integer lanes that makes it
/// bit-identical to the tiled kernel (exact associative adds), which is
/// what lets the registry tune the i64 pair freely.
template <typename T, typename Acc>
void gemm_naive(const T* a, const T* b, Acc* c, std::int64_t m, std::int64_t n,
                std::int64_t k, bool trans_a, bool trans_b, bool threaded) {
  const std::int64_t a_rs = trans_a ? 1 : k;
  const std::int64_t a_cs = trans_a ? m : 1;
  const std::int64_t b_rs = trans_b ? 1 : n;
  const std::int64_t b_cs = trans_b ? k : 1;
  const auto rows = [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        Acc acc{};
        for (std::int64_t p = 0; p < k; ++p) {
          acc += static_cast<Acc>(a[i * a_rs + p * a_cs]) *
                 static_cast<Acc>(b[p * b_rs + j * b_cs]);
        }
        c[i * n + j] += acc;
      }
    }
  };
  if (threaded) {
    par::parallel_for(0, m, 1, rows);
  } else {
    rows(0, m);
  }
}

/// Registry-routed raw GEMM: asks the solver list for this op kind and
/// shape, then dispatches on the chosen variant (0 = tiled, 1 = naive).
template <typename T, typename Acc>
void gemm_dispatch(solver::OpKind op, const T* a, const T* b, Acc* c,
                   std::int64_t m, std::int64_t n, std::int64_t k,
                   bool trans_a, bool trans_b, bool threaded) {
  solver::Problem p;
  p.op = op;
  p.m = m;
  p.n = n;
  p.k = k;
  p.threads = threaded ? par::max_threads() : 1;
  const solver::SolverChoice choice = solver::Registry::instance().choose(p);
  if (choice.variant == 1) {
    gemm_naive<T, Acc>(a, b, c, m, n, k, trans_a, trans_b, threaded);
  } else {
    gemm_tiled<T, Acc>(a, b, c, m, n, k, trans_a, trans_b, threaded);
  }
}

inline void gemm_any_raw(const float* a, const float* b, float* c,
                         std::int64_t m, std::int64_t n, std::int64_t k,
                         bool trans_a, bool trans_b, bool threaded) {
  gemm_dispatch<float, float>(solver::OpKind::kGemmF32, a, b, c, m, n, k,
                              trans_a, trans_b, threaded);
}

inline void gemm_any_raw(const std::int64_t* a, const std::int64_t* b,
                         std::int64_t* c, std::int64_t m, std::int64_t n,
                         std::int64_t k, bool trans_a, bool trans_b,
                         bool threaded) {
  gemm_dispatch<std::int64_t, std::int64_t>(solver::OpKind::kGemmI64, a, b, c,
                                            m, n, k, trans_a, trans_b,
                                            threaded);
}

template <typename T>
void check_mm(const TensorT<T>& a, const TensorT<T>& b, bool trans_a,
              bool trans_b, std::int64_t& m, std::int64_t& n, std::int64_t& k,
              int offset) {
  const std::int64_t ar = a.size(offset), ac = a.size(offset + 1);
  const std::int64_t br = b.size(offset), bc = b.size(offset + 1);
  m = trans_a ? ac : ar;
  k = trans_a ? ar : ac;
  const std::int64_t kb = trans_b ? bc : br;
  n = trans_b ? br : bc;
  check(k == kb, "matmul: inner dimension mismatch " + shape_str(a.shape()) +
                     " x " + shape_str(b.shape()));
}

template <typename T, typename Acc>
TensorT<Acc> mm_impl(const TensorT<T>& a, const TensorT<T>& b, bool trans_a,
                     bool trans_b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 operands");
  std::int64_t m = 0, n = 0, k = 0;
  check_mm(a, b, trans_a, trans_b, m, n, k, 0);
  TensorT<Acc> c({m, n});
  gemm_any_raw(a.data(), b.data(), c.data(), m, n, k, trans_a, trans_b,
               /*threaded=*/true);
  return c;
}

template <typename T, typename Acc>
TensorT<Acc> bmm_impl(const TensorT<T>& a, const TensorT<T>& b, bool trans_a,
                      bool trans_b) {
  check(a.rank() == 3 && b.rank() == 3, "bmm expects rank-3 operands");
  check(a.size(0) == b.size(0), "bmm: batch dim mismatch");
  std::int64_t m = 0, n = 0, k = 0;
  check_mm(a, b, trans_a, trans_b, m, n, k, 1);
  const std::int64_t batch = a.size(0);
  TensorT<Acc> c({batch, m, n});
  const std::int64_t a_sz = a.size(1) * a.size(2);
  const std::int64_t b_sz = b.size(1) * b.size(2);
  if (batch == 1) {
    gemm_any_raw(a.data(), b.data(), c.data(), m, n, k, trans_a, trans_b,
                 /*threaded=*/true);
    return c;
  }
  // Parallel over batch entries (attention: one entry per head); per-entry
  // GEMMs run serial to keep one level of parallelism.
  par::parallel_for(0, batch, 1, [&](std::int64_t ib0, std::int64_t ib1) {
    for (std::int64_t ib = ib0; ib < ib1; ++ib) {
      gemm_any_raw(a.data() + ib * a_sz, b.data() + ib * b_sz,
                   c.data() + ib * m * n, m, n, k, trans_a, trans_b,
                   /*threaded=*/false);
    }
  });
  return c;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  return mm_impl<float, float>(a, b, trans_a, trans_b);
}

Tensor bmm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  return bmm_impl<float, float>(a, b, trans_a, trans_b);
}

ITensor imatmul(const ITensor& a, const ITensor& b, bool trans_a,
                bool trans_b) {
  return mm_impl<std::int64_t, std::int64_t>(a, b, trans_a, trans_b);
}

ITensor ibmm(const ITensor& a, const ITensor& b, bool trans_a, bool trans_b) {
  return bmm_impl<std::int64_t, std::int64_t>(a, b, trans_a, trans_b);
}

void gemm_f32(const float* a, const float* b, float* c, std::int64_t m,
              std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
              bool threaded) {
  gemm_any_raw(a, b, c, m, n, k, trans_a, trans_b, threaded);
}

void gemm_i64(const std::int64_t* a, const std::int64_t* b, std::int64_t* c,
              std::int64_t m, std::int64_t n, std::int64_t k, bool trans_a,
              bool trans_b, bool threaded) {
  gemm_any_raw(a, b, c, m, n, k, trans_a, trans_b, threaded);
}

namespace detail {

void gemm_f32_tiled(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
                    bool threaded) {
  gemm_tiled<float, float>(a, b, c, m, n, k, trans_a, trans_b, threaded);
}

void gemm_f32_naive(const float* a, const float* b, float* c, std::int64_t m,
                    std::int64_t n, std::int64_t k, bool trans_a, bool trans_b,
                    bool threaded) {
  gemm_naive<float, float>(a, b, c, m, n, k, trans_a, trans_b, threaded);
}

void gemm_i64_tiled(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* c, std::int64_t m, std::int64_t n,
                    std::int64_t k, bool trans_a, bool trans_b,
                    bool threaded) {
  gemm_tiled<std::int64_t, std::int64_t>(a, b, c, m, n, k, trans_a, trans_b,
                                         threaded);
}

void gemm_i64_naive(const std::int64_t* a, const std::int64_t* b,
                    std::int64_t* c, std::int64_t m, std::int64_t n,
                    std::int64_t k, bool trans_a, bool trans_b,
                    bool threaded) {
  gemm_naive<std::int64_t, std::int64_t>(a, b, c, m, n, k, trans_a, trans_b,
                                         threaded);
}

}  // namespace detail

}  // namespace t2c
