#include "tensor/matmul.h"

namespace t2c {

namespace {

// Core kernel on raw pointers: C[M,N] += op(A) op(B).
// Layout strides are expressed so the same loop serves all transpose cases;
// the ikj ordering keeps the inner loop contiguous over C and (for the
// common non-transposed case) over B.
template <typename T, typename Acc>
void gemm_raw(const T* a, const T* b, Acc* c, std::int64_t m, std::int64_t n,
              std::int64_t k, bool trans_a, bool trans_b) {
  const std::int64_t a_rs = trans_a ? 1 : k;   // stride between rows of op(A)
  const std::int64_t a_cs = trans_a ? m : 1;   // stride between cols of op(A)
  const std::int64_t b_rs = trans_b ? 1 : n;
  const std::int64_t b_cs = trans_b ? k : 1;
  for (std::int64_t i = 0; i < m; ++i) {
    Acc* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const Acc av = static_cast<Acc>(a[i * a_rs + p * a_cs]);
      if (av == Acc{}) continue;
      const T* brow = b + p * b_rs;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += av * static_cast<Acc>(brow[j * b_cs]);
      }
    }
  }
}

template <typename T>
void check_mm(const TensorT<T>& a, const TensorT<T>& b, bool trans_a,
              bool trans_b, std::int64_t& m, std::int64_t& n, std::int64_t& k,
              int offset) {
  const std::int64_t ar = a.size(offset), ac = a.size(offset + 1);
  const std::int64_t br = b.size(offset), bc = b.size(offset + 1);
  m = trans_a ? ac : ar;
  k = trans_a ? ar : ac;
  const std::int64_t kb = trans_b ? bc : br;
  n = trans_b ? br : bc;
  check(k == kb, "matmul: inner dimension mismatch " + shape_str(a.shape()) +
                     " x " + shape_str(b.shape()));
}

template <typename T, typename Acc>
TensorT<Acc> mm_impl(const TensorT<T>& a, const TensorT<T>& b, bool trans_a,
                     bool trans_b) {
  check(a.rank() == 2 && b.rank() == 2, "matmul expects rank-2 operands");
  std::int64_t m = 0, n = 0, k = 0;
  check_mm(a, b, trans_a, trans_b, m, n, k, 0);
  TensorT<Acc> c({m, n});
  gemm_raw<T, Acc>(a.data(), b.data(), c.data(), m, n, k, trans_a, trans_b);
  return c;
}

template <typename T, typename Acc>
TensorT<Acc> bmm_impl(const TensorT<T>& a, const TensorT<T>& b, bool trans_a,
                      bool trans_b) {
  check(a.rank() == 3 && b.rank() == 3, "bmm expects rank-3 operands");
  check(a.size(0) == b.size(0), "bmm: batch dim mismatch");
  std::int64_t m = 0, n = 0, k = 0;
  check_mm(a, b, trans_a, trans_b, m, n, k, 1);
  const std::int64_t batch = a.size(0);
  TensorT<Acc> c({batch, m, n});
  const std::int64_t a_sz = a.size(1) * a.size(2);
  const std::int64_t b_sz = b.size(1) * b.size(2);
  for (std::int64_t ib = 0; ib < batch; ++ib) {
    gemm_raw<T, Acc>(a.data() + ib * a_sz, b.data() + ib * b_sz,
                     c.data() + ib * m * n, m, n, k, trans_a, trans_b);
  }
  return c;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  return mm_impl<float, float>(a, b, trans_a, trans_b);
}

Tensor bmm(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  return bmm_impl<float, float>(a, b, trans_a, trans_b);
}

ITensor imatmul(const ITensor& a, const ITensor& b, bool trans_a,
                bool trans_b) {
  return mm_impl<std::int64_t, std::int64_t>(a, b, trans_a, trans_b);
}

ITensor ibmm(const ITensor& a, const ITensor& b, bool trans_a, bool trans_b) {
  return bmm_impl<std::int64_t, std::int64_t>(a, b, trans_a, trans_b);
}

}  // namespace t2c
