// t2c_json_check — validates the JSON artifacts t2c_cli emits, used by the
// `t2c_profile_valid` ctest entry.
//
//   t2c_json_check --trace trace.json --profile profile.json
//                  [--metrics metrics.json] [--bench BENCH_runtime.json]
//
// Trace checks: the document parses, every event is one of the phases this
// repo emits (M/X/C), "X" durations are non-negative, timestamps are
// monotonically non-decreasing, every tid carrying events has a
// thread_name metadata record, at least two distinct named tracks exist
// (main + a pool worker) and at least one counter track is present.
// Profile checks: the document parses, the build_info/pmu_tier stamps are
// present, every row carries the call/FLOP/byte fields with sane
// (non-negative) values, and any pmu block is internally consistent.
// Bench checks (t2c.bench.v1): every bench carries build_info + rows, row
// names are unique per bench, reps >= 5, and the min/mean/p50/p95/stddev
// fields are present with min <= mean.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "util/check.h"
#include "util/jsonlite.h"

namespace {

using t2c::check;
using t2c::jsonlite::JsonValue;
using t2c::jsonlite::parse_json;

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  check(is.good(), "cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void check_build_info(const JsonValue& doc, const std::string& path) {
  check(doc.has("build_info") && doc.at("build_info").is_object(),
        path + ": missing build_info block");
  const JsonValue& b = doc.at("build_info");
  for (const char* key : {"git_sha", "compiler", "flags", "isa", "cpu_model"}) {
    check(b.has(key) && b.at(key).is_string(),
          path + ": build_info missing " + key);
  }
  check(b.has("threads") && b.at("threads").is_number() &&
            b.at("threads").number >= 1.0,
        path + ": build_info.threads must be >= 1");
}

void check_trace(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.is_object() && doc.has("traceEvents"),
        path + ": no traceEvents array");
  const JsonValue& events = doc.at("traceEvents");
  check(events.is_array() && !events.array.empty(),
        path + ": traceEvents empty");
  std::set<double> named_tids;
  std::set<double> event_tids;
  std::set<std::string> track_names;
  std::set<std::string> counter_names;
  double last_ts = -1.0;
  std::size_t spans = 0;
  for (const JsonValue& e : events.array) {
    check(e.is_object() && e.has("ph") && e.has("name"),
          path + ": event missing ph/name");
    const std::string& ph = e.at("ph").str;
    check(ph == "M" || ph == "X" || ph == "C",
          path + ": unexpected event phase '" + ph + "'");
    if (ph == "M") {
      if (e.at("name").str == "thread_name") {
        named_tids.insert(e.at("tid").number);
        track_names.insert(e.at("args").at("name").str);
      }
      continue;
    }
    check(e.has("ts") && e.at("ts").number >= 0.0, path + ": bad ts");
    check(e.at("ts").number >= last_ts, path + ": ts not monotonic");
    last_ts = e.at("ts").number;
    event_tids.insert(e.at("tid").number);
    if (ph == "X") {
      ++spans;
      check(e.has("dur") && e.at("dur").number >= 0.0,
            path + ": negative span duration");
    } else {
      counter_names.insert(e.at("name").str);
      check(e.at("args").has("value"), path + ": counter without value");
    }
  }
  check(spans > 0, path + ": no complete (X) events");
  check(!counter_names.empty(), path + ": no counter (C) track");
  for (const double tid : event_tids) {
    check(named_tids.count(tid) == 1,
          path + ": events on an unnamed tid");
  }
  check(track_names.size() >= 2,
        path + ": expected at least two named thread tracks");
  std::printf("trace ok: %zu events, %zu named tracks, %zu counter tracks\n",
              events.array.size(), track_names.size(), counter_names.size());
}

void check_profile(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check_build_info(doc, path);
  check(doc.has("pmu_tier") && doc.at("pmu_tier").is_string(),
        path + ": missing pmu_tier");
  const std::string& tier = doc.at("pmu_tier").str;
  check(tier == "disabled" || tier == "cputime" || tier == "hardware",
        path + ": unknown pmu_tier '" + tier + "'");
  for (const char* key :
       {"total_ms", "total_flops", "total_macs", "total_bytes"}) {
    check(doc.has(key) && doc.at(key).is_number(),
          path + ": missing " + key);
  }
  check(doc.has("ops") && doc.at("ops").is_array() &&
            !doc.at("ops").array.empty(),
        path + ": no ops rows");
  std::size_t pmu_rows = 0;
  for (const JsonValue& row : doc.at("ops").array) {
    check(row.has("op") && row.at("op").is_string(), path + ": row w/o op");
    for (const char* key : {"calls", "total_ms", "p50_ms", "p95_ms", "p99_ms",
                            "time_pct", "flops", "macs", "bytes_read",
                            "bytes_written", "intensity", "gflops", "gbps"}) {
      check(row.has(key) && row.at(key).is_number() &&
                row.at(key).number >= 0.0,
            path + ": row '" + row.at("op").str + "' bad field " + key);
    }
    check(row.at("calls").number > 0, path + ": zero-call row");
    if (row.has("pmu")) {
      // Measured-counter block: only present at an enabled tier; the
      // hardware-only fields (cycles, ipc, ...) ride along as a unit.
      check(tier != "disabled",
            path + ": pmu block in a disabled-tier profile");
      const JsonValue& p = row.at("pmu");
      check(p.has("steps") && p.at("steps").number > 0,
            path + ": pmu block without steps");
      check(p.has("cpu_ms") && p.at("cpu_ms").number >= 0.0,
            path + ": pmu block without cpu_ms");
      if (p.has("cycles")) {
        for (const char* key : {"instructions", "cache_refs", "cache_misses",
                                "branch_misses", "ipc", "cache_miss_rate",
                                "measured_bytes"}) {
          check(p.has(key) && p.at(key).number >= 0.0,
                path + ": pmu block missing " + key);
        }
      }
      ++pmu_rows;
    }
  }
  std::printf("profile ok: %zu op rows (%zu with pmu, tier %s)\n",
              doc.at("ops").array.size(), pmu_rows, tier.c_str());
}

void check_bench(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.has("schema") && doc.at("schema").str == "t2c.bench.v1",
        path + ": schema is not t2c.bench.v1");
  check(doc.has("benches") && doc.at("benches").is_object() &&
            !doc.at("benches").object.empty(),
        path + ": no benches");
  std::size_t rows = 0;
  for (const auto& [bench, value] : doc.at("benches").object) {
    check(value.is_object() && value.has("rows"),
          path + ": bench '" + bench + "' lacks the build_info+rows form");
    check_build_info(value, path + ": " + bench);
    check(value.at("rows").is_array() && !value.at("rows").array.empty(),
          path + ": bench '" + bench + "' has no rows");
    std::set<std::string> names;
    for (const JsonValue& row : value.at("rows").array) {
      check(row.has("name") && row.at("name").is_string(),
            path + ": " + bench + " row without name");
      const std::string& name = row.at("name").str;
      check(names.insert(name).second,
            path + ": " + bench + " duplicate row name '" + name + "'");
      check(row.has("reps") && row.at("reps").number >= 5.0,
            path + ": " + bench + "/" + name + " needs reps >= 5");
      for (const char* key :
           {"min_ms", "mean_ms", "p50_ms", "p95_ms", "stddev_ms"}) {
        check(row.has(key) && row.at(key).is_number() &&
                  row.at(key).number >= 0.0,
              path + ": " + bench + "/" + name + " bad field " + key);
      }
      check(row.at("min_ms").number <= row.at("mean_ms").number + 1e-9,
            path + ": " + bench + "/" + name + " min_ms > mean_ms");
      ++rows;
    }
  }
  std::printf("bench ok: %zu benches, %zu rows\n",
              doc.at("benches").object.size(), rows);
}

void check_metrics(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check_build_info(doc, path);
  check(doc.has("counters") && doc.has("gauges") && doc.has("histograms"),
        path + ": missing registry sections");
  const JsonValue& hists = doc.at("histograms");
  check(hists.is_object(), path + ": histograms is not an object");
  for (const auto& [name, h] : hists.object) {
    for (const char* key :
         {"count", "sum", "mean", "min", "max", "p50", "p95", "p99"}) {
      check(h.has(key), path + ": histogram '" + name + "' missing " + key);
    }
  }
  std::printf("metrics ok: %zu histograms\n", hists.object.size());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool any = false;
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string path = argv[i + 1];
      if (flag == "--trace") check_trace(path);
      else if (flag == "--profile") check_profile(path);
      else if (flag == "--metrics") check_metrics(path);
      else if (flag == "--bench") check_bench(path);
      else t2c::fail("unknown flag '" + flag + "'");
      any = true;
    }
    check(any, "usage: t2c_json_check [--trace F] [--profile F] "
               "[--metrics F] [--bench F]");
    return 0;
  } catch (const t2c::Error& e) {
    std::fprintf(stderr, "t2c_json_check: %s\n", e.what());
    return 1;
  }
}
