// t2c_json_check — validates the JSON artifacts t2c_cli emits, used by the
// `t2c_profile_valid` ctest entry.
//
//   t2c_json_check --trace trace.json --profile profile.json
//                  [--metrics metrics.json]
//
// Trace checks: the document parses, every event is one of the phases this
// repo emits (M/X/C), "X" durations are non-negative, timestamps are
// monotonically non-decreasing, every tid carrying events has a
// thread_name metadata record, at least two distinct named tracks exist
// (main + a pool worker) and at least one counter track is present.
// Profile checks: the document parses, totals are present, and every row
// carries the call/FLOP/byte fields with sane (non-negative) values.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "util/check.h"
#include "util/jsonlite.h"

namespace {

using t2c::check;
using t2c::jsonlite::JsonValue;
using t2c::jsonlite::parse_json;

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  check(is.good(), "cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void check_trace(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.is_object() && doc.has("traceEvents"),
        path + ": no traceEvents array");
  const JsonValue& events = doc.at("traceEvents");
  check(events.is_array() && !events.array.empty(),
        path + ": traceEvents empty");
  std::set<double> named_tids;
  std::set<double> event_tids;
  std::set<std::string> track_names;
  std::set<std::string> counter_names;
  double last_ts = -1.0;
  std::size_t spans = 0;
  for (const JsonValue& e : events.array) {
    check(e.is_object() && e.has("ph") && e.has("name"),
          path + ": event missing ph/name");
    const std::string& ph = e.at("ph").str;
    check(ph == "M" || ph == "X" || ph == "C",
          path + ": unexpected event phase '" + ph + "'");
    if (ph == "M") {
      if (e.at("name").str == "thread_name") {
        named_tids.insert(e.at("tid").number);
        track_names.insert(e.at("args").at("name").str);
      }
      continue;
    }
    check(e.has("ts") && e.at("ts").number >= 0.0, path + ": bad ts");
    check(e.at("ts").number >= last_ts, path + ": ts not monotonic");
    last_ts = e.at("ts").number;
    event_tids.insert(e.at("tid").number);
    if (ph == "X") {
      ++spans;
      check(e.has("dur") && e.at("dur").number >= 0.0,
            path + ": negative span duration");
    } else {
      counter_names.insert(e.at("name").str);
      check(e.at("args").has("value"), path + ": counter without value");
    }
  }
  check(spans > 0, path + ": no complete (X) events");
  check(!counter_names.empty(), path + ": no counter (C) track");
  for (const double tid : event_tids) {
    check(named_tids.count(tid) == 1,
          path + ": events on an unnamed tid");
  }
  check(track_names.size() >= 2,
        path + ": expected at least two named thread tracks");
  std::printf("trace ok: %zu events, %zu named tracks, %zu counter tracks\n",
              events.array.size(), track_names.size(), counter_names.size());
}

void check_profile(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  for (const char* key :
       {"total_ms", "total_flops", "total_macs", "total_bytes"}) {
    check(doc.has(key) && doc.at(key).is_number(),
          path + ": missing " + key);
  }
  check(doc.has("ops") && doc.at("ops").is_array() &&
            !doc.at("ops").array.empty(),
        path + ": no ops rows");
  for (const JsonValue& row : doc.at("ops").array) {
    check(row.has("op") && row.at("op").is_string(), path + ": row w/o op");
    for (const char* key : {"calls", "total_ms", "p50_ms", "p95_ms", "p99_ms",
                            "time_pct", "flops", "macs", "bytes_read",
                            "bytes_written", "intensity", "gflops", "gbps"}) {
      check(row.has(key) && row.at(key).is_number() &&
                row.at(key).number >= 0.0,
            path + ": row '" + row.at("op").str + "' bad field " + key);
    }
    check(row.at("calls").number > 0, path + ": zero-call row");
  }
  std::printf("profile ok: %zu op rows\n", doc.at("ops").array.size());
}

void check_metrics(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.has("counters") && doc.has("gauges") && doc.has("histograms"),
        path + ": missing registry sections");
  const JsonValue& hists = doc.at("histograms");
  check(hists.is_object(), path + ": histograms is not an object");
  for (const auto& [name, h] : hists.object) {
    for (const char* key :
         {"count", "sum", "mean", "min", "max", "p50", "p95", "p99"}) {
      check(h.has(key), path + ": histogram '" + name + "' missing " + key);
    }
  }
  std::printf("metrics ok: %zu histograms\n", hists.object.size());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool any = false;
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string path = argv[i + 1];
      if (flag == "--trace") check_trace(path);
      else if (flag == "--profile") check_profile(path);
      else if (flag == "--metrics") check_metrics(path);
      else t2c::fail("unknown flag '" + flag + "'");
      any = true;
    }
    check(any, "usage: t2c_json_check [--trace F] [--profile F] "
               "[--metrics F]");
    return 0;
  } catch (const t2c::Error& e) {
    std::fprintf(stderr, "t2c_json_check: %s\n", e.what());
    return 1;
  }
}
