// t2c_json_check — validates the JSON artifacts t2c_cli emits, used by the
// `t2c_profile_valid` ctest entry.
//
//   t2c_json_check --trace trace.json --profile profile.json
//                  [--metrics metrics.json] [--bench BENCH_runtime.json]
//
// Trace checks: the document parses, every event is one of the phases this
// repo emits (M/X/C), "X" durations are non-negative, timestamps are
// monotonically non-decreasing, every tid carrying events has a
// thread_name metadata record, at least two distinct named tracks exist
// (main + a pool worker) and at least one counter track is present.
// Profile checks: the document parses, the build_info/pmu_tier stamps are
// present, every row carries the call/FLOP/byte fields with sane
// (non-negative) values, and any pmu block is internally consistent.
// Bench checks (t2c.bench.v1): every bench carries build_info + rows, row
// names are unique per bench, reps >= 5, any optional "kernel" code-path
// tag is a [a-z0-9_]+ identifier, and the min/mean/p50/p95/stddev
// fields are present with min <= mean.
// Tuning-cache checks (--tune-cache FILE, schema t2c.tune.v1): the header
// carries the schema plus the cpu_model/git_sha/isa host key as non-empty
// strings, entries is an array whose elements each carry a non-empty
// "key", a "solver" matching the [a-z0-9_]+ kernel-tag grammar, and a
// non-negative "ms"; entry keys are unique.
// Prometheus checks (--prom FILE): text exposition format 0.0.4 — every
// sample's family has HELP and TYPE lines that precede it, TYPE is one of
// counter/gauge/histogram, metric and label names match the spec grammar,
// label values are quoted with only \\ \" \n escapes, histogram _bucket
// series are cumulative (non-decreasing in `le` order) and end in a +Inf
// bucket equal to the family's _count, and the document ends in a newline.
// Histogram _bucket samples may carry OpenMetrics exemplars
// (`# {labels} value`); the exemplar value must sit inside its bucket.
// --prom-scrape PORT fetches http://127.0.0.1:PORT/metrics over a raw
// socket (no curl dependency), requires a 200, validates the body the same
// way, and writes it to $T2C_PROM_DUMP when that variable names a file.
// Postmortem checks (--postmortem FILE, schema t2c.postmortem.v1): the
// crash-handler bundle — reason (signal/stall with detail fields),
// build_info, lock-free vitals, >= 1 complete flight event in time order,
// a non-empty hex backtrace, and the truncation marker.
// --fetch PORT:/PATH performs a generic exporter GET (e.g. /exemplars,
// /requests/<id>) and prints the body, for the shell gates.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/check.h"
#include "util/jsonlite.h"

namespace {

using t2c::check;
using t2c::jsonlite::JsonValue;
using t2c::jsonlite::parse_json;

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  check(is.good(), "cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void check_build_info(const JsonValue& doc, const std::string& path) {
  check(doc.has("build_info") && doc.at("build_info").is_object(),
        path + ": missing build_info block");
  const JsonValue& b = doc.at("build_info");
  for (const char* key : {"git_sha", "compiler", "flags", "isa", "cpu_model"}) {
    check(b.has(key) && b.at(key).is_string(),
          path + ": build_info missing " + key);
  }
  check(b.has("threads") && b.at("threads").is_number() &&
            b.at("threads").number >= 1.0,
        path + ": build_info.threads must be >= 1");
}

void check_trace(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.is_object() && doc.has("traceEvents"),
        path + ": no traceEvents array");
  const JsonValue& events = doc.at("traceEvents");
  check(events.is_array() && !events.array.empty(),
        path + ": traceEvents empty");
  std::set<double> named_tids;
  std::set<double> event_tids;
  std::set<std::string> track_names;
  std::set<std::string> counter_names;
  double last_ts = -1.0;
  std::size_t spans = 0;
  for (const JsonValue& e : events.array) {
    check(e.is_object() && e.has("ph") && e.has("name"),
          path + ": event missing ph/name");
    const std::string& ph = e.at("ph").str;
    check(ph == "M" || ph == "X" || ph == "C",
          path + ": unexpected event phase '" + ph + "'");
    if (ph == "M") {
      if (e.at("name").str == "thread_name") {
        named_tids.insert(e.at("tid").number);
        track_names.insert(e.at("args").at("name").str);
      }
      continue;
    }
    check(e.has("ts") && e.at("ts").number >= 0.0, path + ": bad ts");
    check(e.at("ts").number >= last_ts, path + ": ts not monotonic");
    last_ts = e.at("ts").number;
    event_tids.insert(e.at("tid").number);
    if (ph == "X") {
      ++spans;
      check(e.has("dur") && e.at("dur").number >= 0.0,
            path + ": negative span duration");
    } else {
      counter_names.insert(e.at("name").str);
      check(e.at("args").has("value"), path + ": counter without value");
    }
  }
  check(spans > 0, path + ": no complete (X) events");
  check(!counter_names.empty(), path + ": no counter (C) track");
  for (const double tid : event_tids) {
    check(named_tids.count(tid) == 1,
          path + ": events on an unnamed tid");
  }
  check(track_names.size() >= 2,
        path + ": expected at least two named thread tracks");
  std::printf("trace ok: %zu events, %zu named tracks, %zu counter tracks\n",
              events.array.size(), track_names.size(), counter_names.size());
}

void check_profile(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check_build_info(doc, path);
  check(doc.has("pmu_tier") && doc.at("pmu_tier").is_string(),
        path + ": missing pmu_tier");
  const std::string& tier = doc.at("pmu_tier").str;
  check(tier == "disabled" || tier == "cputime" || tier == "hardware",
        path + ": unknown pmu_tier '" + tier + "'");
  for (const char* key :
       {"total_ms", "total_flops", "total_macs", "total_bytes"}) {
    check(doc.has(key) && doc.at(key).is_number(),
          path + ": missing " + key);
  }
  check(doc.has("ops") && doc.at("ops").is_array() &&
            !doc.at("ops").array.empty(),
        path + ": no ops rows");
  std::size_t pmu_rows = 0;
  for (const JsonValue& row : doc.at("ops").array) {
    check(row.has("op") && row.at("op").is_string(), path + ": row w/o op");
    for (const char* key : {"calls", "total_ms", "p50_ms", "p95_ms", "p99_ms",
                            "time_pct", "flops", "macs", "bytes_read",
                            "bytes_written", "intensity", "gflops", "gbps"}) {
      check(row.has(key) && row.at(key).is_number() &&
                row.at(key).number >= 0.0,
            path + ": row '" + row.at("op").str + "' bad field " + key);
    }
    check(row.at("calls").number > 0, path + ": zero-call row");
    if (row.has("pmu")) {
      // Measured-counter block: only present at an enabled tier; the
      // hardware-only fields (cycles, ipc, ...) ride along as a unit.
      check(tier != "disabled",
            path + ": pmu block in a disabled-tier profile");
      const JsonValue& p = row.at("pmu");
      check(p.has("steps") && p.at("steps").number > 0,
            path + ": pmu block without steps");
      check(p.has("cpu_ms") && p.at("cpu_ms").number >= 0.0,
            path + ": pmu block without cpu_ms");
      if (p.has("cycles")) {
        for (const char* key : {"instructions", "cache_refs", "cache_misses",
                                "branch_misses", "ipc", "cache_miss_rate",
                                "measured_bytes"}) {
          check(p.has(key) && p.at(key).number >= 0.0,
                path + ": pmu block missing " + key);
        }
      }
      ++pmu_rows;
    }
  }
  std::printf("profile ok: %zu op rows (%zu with pmu, tier %s)\n",
              doc.at("ops").array.size(), pmu_rows, tier.c_str());
}

void check_bench(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.has("schema") && doc.at("schema").str == "t2c.bench.v1",
        path + ": schema is not t2c.bench.v1");
  check(doc.has("benches") && doc.at("benches").is_object() &&
            !doc.at("benches").object.empty(),
        path + ": no benches");
  std::size_t rows = 0;
  for (const auto& [bench, value] : doc.at("benches").object) {
    check(value.is_object() && value.has("rows"),
          path + ": bench '" + bench + "' lacks the build_info+rows form");
    check_build_info(value, path + ": " + bench);
    check(value.at("rows").is_array() && !value.at("rows").array.empty(),
          path + ": bench '" + bench + "' has no rows");
    std::set<std::string> names;
    for (const JsonValue& row : value.at("rows").array) {
      check(row.has("name") && row.at("name").is_string(),
            path + ": " + bench + " row without name");
      const std::string& name = row.at("name").str;
      check(names.insert(name).second,
            path + ": " + bench + " duplicate row name '" + name + "'");
      check(row.has("reps") && row.at("reps").number >= 5.0,
            path + ": " + bench + "/" + name + " needs reps >= 5");
      for (const char* key :
           {"min_ms", "mean_ms", "p50_ms", "p95_ms", "stddev_ms"}) {
        check(row.has(key) && row.at(key).is_number() &&
                  row.at(key).number >= 0.0,
              path + ": " + bench + "/" + name + " bad field " + key);
      }
      check(row.at("min_ms").number <= row.at("mean_ms").number + 1e-9,
            path + ": " + bench + "/" + name + " min_ms > mean_ms");
      if (row.has("kernel")) {
        // Optional code-path tag (t2c_perf_diff keys kernel switches off
        // it): must be a non-empty [a-z0-9_]+ identifier.
        check(row.at("kernel").is_string() && !row.at("kernel").str.empty(),
              path + ": " + bench + "/" + name + " kernel must be a "
              "non-empty string");
        for (const char c : row.at("kernel").str) {
          check((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_',
                path + ": " + bench + "/" + name + " kernel has invalid "
                "character '" + std::string(1, c) + "'");
        }
      }
      ++rows;
    }
  }
  std::printf("bench ok: %zu benches, %zu rows\n",
              doc.at("benches").object.size(), rows);
}

void check_tune_cache(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.has("schema") && doc.at("schema").str == "t2c.tune.v1",
        path + ": schema is not t2c.tune.v1");
  for (const char* key : {"cpu_model", "git_sha", "isa"}) {
    check(doc.has(key) && doc.at(key).is_string() &&
              !doc.at(key).str.empty(),
          path + ": missing host key field " + key);
  }
  check(doc.has("entries") && doc.at("entries").is_array(),
        path + ": missing entries array");
  std::set<std::string> keys;
  for (const JsonValue& e : doc.at("entries").array) {
    check(e.is_object() && e.has("key") && e.at("key").is_string() &&
              !e.at("key").str.empty(),
          path + ": entry without a key");
    const std::string& k = e.at("key").str;
    check(keys.insert(k).second, path + ": duplicate entry key '" + k + "'");
    check(e.has("solver") && e.at("solver").is_string() &&
              !e.at("solver").str.empty(),
          path + ": entry '" + k + "' without a solver");
    for (const char c : e.at("solver").str) {
      check((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_',
            path + ": entry '" + k + "' solver has invalid character '" +
                std::string(1, c) + "'");
    }
    check(e.has("ms") && e.at("ms").is_number() && e.at("ms").number >= 0.0,
          path + ": entry '" + k + "' bad ms");
  }
  std::printf("tune-cache ok: %zu entries\n", doc.at("entries").array.size());
}

void check_metrics(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check_build_info(doc, path);
  check(doc.has("counters") && doc.has("gauges") && doc.has("histograms"),
        path + ": missing registry sections");
  const JsonValue& hists = doc.at("histograms");
  check(hists.is_object(), path + ": histograms is not an object");
  for (const auto& [name, h] : hists.object) {
    for (const char* key :
         {"count", "sum", "mean", "min", "max", "p50", "p95", "p99"}) {
      check(h.has(key), path + ": histogram '" + name + "' missing " + key);
    }
  }
  std::printf("metrics ok: %zu histograms\n", hists.object.size());
}

// Postmortem-bundle checks (--postmortem FILE, schema t2c.postmortem.v1):
// the document the crash handlers wrote from signal context must parse,
// name its reason (signal or stall, each with its detail fields), carry
// the build_info stamp and the lock-free vitals block, hold at least one
// flight event with a complete field set in non-decreasing time order, a
// non-empty hex backtrace, and the truncation marker.
void check_postmortem(const std::string& path) {
  const JsonValue doc = parse_json(slurp(path));
  check(doc.has("schema") && doc.at("schema").str == "t2c.postmortem.v1",
        path + ": schema is not t2c.postmortem.v1");
  check(doc.has("reason") && doc.at("reason").is_object(),
        path + ": missing reason block");
  const JsonValue& r = doc.at("reason");
  check(r.has("kind") && r.at("kind").is_string(),
        path + ": reason without kind");
  const std::string& kind = r.at("kind").str;
  check(kind == "signal" || kind == "stall",
        path + ": unknown reason kind '" + kind + "'");
  if (kind == "signal") {
    check(r.has("signal") && r.at("signal").is_string() &&
              !r.at("signal").str.empty(),
          path + ": signal reason without signal name");
    check(r.has("signo") && r.at("signo").is_number() &&
              r.at("signo").number >= 1.0,
          path + ": signal reason without signo");
  } else {
    check(r.has("stall_age_ms") && r.at("stall_age_ms").number >= 0.0,
          path + ": stall reason without stall_age_ms");
    check(r.has("stall_deadline_ms") &&
              r.at("stall_deadline_ms").number > 0.0,
          path + ": stall reason without stall_deadline_ms");
    check(r.at("stall_age_ms").number >= r.at("stall_deadline_ms").number,
          path + ": stall age below the deadline that fired");
  }
  for (const char* key : {"t_mono_ns", "t_unix_s", "pid"}) {
    check(doc.has(key) && doc.at(key).is_number() &&
              doc.at(key).number >= 0.0,
          path + ": missing " + key);
  }
  check_build_info(doc, path);
  check(doc.has("metrics") && doc.at("metrics").is_object(),
        path + ": missing metrics block");
  const JsonValue& m = doc.at("metrics");
  for (const char* key : {"requests_started", "requests_done",
                          "flight_events", "flight_dropped", "flight_rings",
                          "steps_recorded"}) {
    check(m.has(key) && m.at(key).is_number() && m.at(key).number >= 0.0,
          path + ": metrics missing " + key);
  }
  check(m.has("last_step") && m.at("last_step").is_string() &&
            !m.at("last_step").str.empty(),
        path + ": metrics missing last_step");
  check(doc.has("active_requests") && doc.at("active_requests").is_array(),
        path + ": missing active_requests array");
  for (const JsonValue& a : doc.at("active_requests").array) {
    check(a.has("id") && a.at("id").number >= 1.0 && a.has("age_ms"),
          path + ": malformed active request entry");
  }
  check(doc.has("flight") && doc.at("flight").is_object(),
        path + ": missing flight block");
  const JsonValue& fl = doc.at("flight");
  check(fl.has("dropped") && fl.at("dropped").is_number() &&
            fl.at("dropped").number >= 0.0,
        path + ": flight block without dropped count");
  check(fl.has("events") && fl.at("events").is_array() &&
            !fl.at("events").array.empty(),
        path + ": flight block without events");
  const std::set<std::string> kKinds = {"step",       "request_start",
                                        "request_done", "saturation",
                                        "pool_region",  "mark"};
  double last_t = -1.0;
  for (const JsonValue& e : fl.at("events").array) {
    check(e.has("t_ns") && e.at("t_ns").number >= last_t,
          path + ": flight events not in time order");
    last_t = e.at("t_ns").number;
    check(e.has("kind") && kKinds.count(e.at("kind").str) == 1,
          path + ": flight event with unknown kind");
    check(e.has("name") && e.at("name").is_string() &&
              !e.at("name").str.empty(),
          path + ": flight event without a name");
    check(e.has("value") && e.at("value").is_number(),
          path + ": flight event without a value");
    check(e.has("req") && e.at("req").number >= 0.0,
          path + ": flight event without a req id");
    check(e.has("thread") && e.at("thread").is_string(),
          path + ": flight event without a thread");
  }
  check(doc.has("backtrace") && doc.at("backtrace").is_array() &&
            !doc.at("backtrace").array.empty(),
        path + ": missing backtrace");
  for (const JsonValue& f : doc.at("backtrace").array) {
    check(f.is_string() && f.str.rfind("0x", 0) == 0,
          path + ": backtrace frame is not a hex address");
  }
  check(doc.has("truncated") &&
            doc.at("truncated").kind == JsonValue::Kind::kBool,
        path + ": missing truncated marker");
  std::printf("postmortem ok: %s, %zu flight events, %zu frames, "
              "%zu active requests\n",
              kind.c_str(), fl.at("events").array.size(),
              doc.at("backtrace").array.size(),
              doc.at("active_requests").array.size());
}

// ---- Prometheus text exposition ----

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (i == 0 ? !alpha : !(alpha || (c >= '0' && c <= '9'))) return false;
  }
  return true;
}

bool valid_label_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    if (i == 0 ? !alpha : !(alpha || (c >= '0' && c <= '9'))) return false;
  }
  return true;
}

struct PromSample {
  std::string name;
  std::string labels;  ///< canonical "k=v,k=v" excluding `le`
  double le = 0.0;     ///< parsed le label (histogram buckets)
  bool has_le = false;
  double value = 0.0;
  bool has_exemplar = false;  ///< OpenMetrics `# {labels} value` suffix
  double exemplar_value = 0.0;
  std::string exemplar_labels;
};

/// Parses one `name{labels} value` line; fails loudly on grammar errors.
PromSample parse_sample(const std::string& line, const std::string& where) {
  PromSample s;
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  s.name = line.substr(0, i);
  check(valid_metric_name(s.name), where + ": bad metric name '" + s.name +
                                       "' in: " + line);
  if (i < line.size() && line[i] == '{') {
    ++i;
    std::map<std::string, std::string> labels;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      check(eq != std::string::npos, where + ": unterminated label in: " + line);
      const std::string lname = line.substr(i, eq - i);
      check(valid_label_name(lname),
            where + ": bad label name '" + lname + "' in: " + line);
      check(eq + 1 < line.size() && line[eq + 1] == '"',
            where + ": unquoted label value in: " + line);
      std::string lval;
      i = eq + 2;
      bool closed = false;
      while (i < line.size()) {
        const char c = line[i];
        if (c == '\\') {
          check(i + 1 < line.size(), where + ": dangling escape in: " + line);
          const char e = line[i + 1];
          check(e == '\\' || e == '"' || e == 'n',
                where + ": bad escape \\" + std::string(1, e) + " in: " + line);
          lval += e == 'n' ? '\n' : e;
          i += 2;
        } else if (c == '"') {
          closed = true;
          ++i;
          break;
        } else {
          lval += c;
          ++i;
        }
      }
      check(closed, where + ": unterminated label value in: " + line);
      check(labels.emplace(lname, lval).second,
            where + ": duplicate label '" + lname + "' in: " + line);
      if (i < line.size() && line[i] == ',') ++i;
    }
    check(i < line.size() && line[i] == '}',
          where + ": unterminated label block in: " + line);
    ++i;
    for (const auto& [k, v] : labels) {
      if (k == "le") {
        s.has_le = true;
        s.le = v == "+Inf" ? std::numeric_limits<double>::infinity()
                           : std::atof(v.c_str());
      } else {
        if (!s.labels.empty()) s.labels += ',';
        s.labels += k + "=" + v;
      }
    }
  }
  check(i < line.size() && line[i] == ' ',
        where + ": missing value separator in: " + line);
  std::string val = line.substr(i + 1);
  // OpenMetrics exemplar suffix — `value # {labels} exemplar-value` — is
  // only legal on histogram bucket samples; the exemplar value must fall
  // inside the bucket it decorates.
  const std::size_t ex = val.find(" # ");
  if (ex != std::string::npos) {
    const std::string tail = val.substr(ex + 3);
    val = val.substr(0, ex);
    check(s.has_le, where + ": exemplar on a non-bucket sample: " + line);
    check(!tail.empty() && tail[0] == '{',
          where + ": exemplar without a label set in: " + line);
    const std::size_t close = tail.find('}');
    check(close != std::string::npos,
          where + ": unterminated exemplar labels in: " + line);
    s.exemplar_labels = tail.substr(1, close - 1);
    check(s.exemplar_labels.find('=') != std::string::npos,
          where + ": empty exemplar label set in: " + line);
    const std::string exval = tail.substr(close + 1);
    check(exval.size() >= 2 && exval[0] == ' ' &&
              exval.find(' ', 1) == std::string::npos,
          where + ": malformed exemplar value in: " + line);
    s.has_exemplar = true;
    s.exemplar_value = std::atof(exval.c_str() + 1);
    check(s.exemplar_value <= s.le,
          where + ": exemplar value above its bucket le in: " + line);
  }
  check(!val.empty() && val.find(' ') == std::string::npos,
        where + ": malformed value in: " + line);
  s.value = std::atof(val.c_str());
  return s;
}

void check_prom_text(const std::string& body, const std::string& where) {
  check(!body.empty() && body.back() == '\n',
        where + ": exposition must end in a newline");
  std::map<std::string, std::string> types;  ///< family -> TYPE
  std::set<std::string> helps;
  // (family, labels) -> bucket series in appearance order / _count value.
  std::map<std::string, std::vector<PromSample>> buckets;
  std::map<std::string, double> counts;
  std::size_t samples = 0;
  std::size_t exemplars = 0;
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash;
      std::string kind;
      std::string fam;
      ls >> hash >> kind >> fam;
      check(kind == "HELP" || kind == "TYPE",
            where + ": unknown comment form: " + line);
      check(valid_metric_name(fam), where + ": bad family name in: " + line);
      if (kind == "HELP") {
        check(helps.insert(fam).second,
              where + ": duplicate HELP for " + fam);
      } else {
        std::string type;
        ls >> type;
        check(type == "counter" || type == "gauge" || type == "histogram",
              where + ": bad TYPE '" + type + "' for " + fam);
        check(types.emplace(fam, type).second,
              where + ": duplicate TYPE for " + fam);
      }
      continue;
    }
    const PromSample s = parse_sample(line, where);
    ++samples;
    if (s.has_exemplar) ++exemplars;
    // Resolve the sample to its family: histogram samples append
    // _bucket/_sum/_count, counters append _total.
    std::string fam = s.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string suf = suffix;
      if (fam.size() > suf.size() &&
          fam.compare(fam.size() - suf.size(), suf.size(), suf) == 0 &&
          types.count(fam.substr(0, fam.size() - suf.size()))) {
        fam = fam.substr(0, fam.size() - suf.size());
        break;
      }
    }
    check(types.count(fam) == 1,
          where + ": sample before TYPE (or unknown family): " + line);
    check(helps.count(fam) == 1, where + ": family without HELP: " + fam);
    if (types.at(fam) == "histogram") {
      const std::string key = fam + "{" + s.labels + "}";
      if (s.has_le) {
        buckets[key].push_back(s);
      } else if (s.name == fam + "_count") {
        counts[key] = s.value;
      }
    } else {
      check(!s.has_le, where + ": le label outside a histogram: " + line);
    }
  }
  check(samples > 0, where + ": no samples");
  for (const auto& [key, series] : buckets) {
    check(!series.empty(), where + ": histogram without buckets: " + key);
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_v = -1.0;
    for (const PromSample& b : series) {
      check(b.le > prev_le, where + ": le not increasing for " + key);
      check(b.value >= prev_v,
            where + ": bucket counts not cumulative for " + key);
      prev_le = b.le;
      prev_v = b.value;
    }
    check(series.back().le ==
              std::numeric_limits<double>::infinity(),
          where + ": histogram missing +Inf bucket: " + key);
    const auto it = counts.find(key);
    check(it != counts.end(), where + ": histogram missing _count: " + key);
    check(series.back().value == it->second,
          where + ": +Inf bucket != _count for " + key);
  }
  std::printf("prom ok: %zu families, %zu samples, %zu histogram series, "
              "%zu exemplars\n",
              types.size(), samples, buckets.size(), exemplars);
}

void check_prom(const std::string& path) {
  check_prom_text(slurp(path), path);
}

/// Fetches http://127.0.0.1:<port><url_path> over a raw socket (no curl
/// dependency), requires a 200, and returns the body.
std::string http_fetch(int port, const std::string& url_path,
                       const std::string& who) {
  check(port > 0 && port <= 65535,
        who + ": bad port " + std::to_string(port));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  check(fd >= 0, who + ": socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  check(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0,
        who + ": cannot connect to 127.0.0.1:" + std::to_string(port));
  const std::string req =
      "GET " + url_path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  check(send(fd, req.c_str(), req.size(), 0) ==
            static_cast<ssize_t>(req.size()),
        who + ": send failed");
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  check(resp.rfind("HTTP/1.0 200", 0) == 0 ||
            resp.rfind("HTTP/1.1 200", 0) == 0,
        who + ": non-200 response for " + url_path + ": " +
            resp.substr(0, 64));
  const std::size_t split = resp.find("\r\n\r\n");
  check(split != std::string::npos, who + ": malformed response");
  return resp.substr(split + 4);
}

void scrape_prom(const std::string& port_str) {
  const int port = std::atoi(port_str.c_str());
  const std::string body = http_fetch(port, "/metrics", "--prom-scrape");
  if (const char* dump = std::getenv("T2C_PROM_DUMP")) {
    std::ofstream os(dump);
    check(os.good(), std::string("--prom-scrape: cannot write ") + dump);
    os << body;
  }
  check_prom_text(body, "scrape 127.0.0.1:" + port_str);
}

/// `--fetch PORT:PATH` — generic exporter GET printing the body verbatim,
/// so shell gates can pull /exemplars and /requests/<id> without curl.
void fetch_url(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  check(colon != std::string::npos && colon > 0 && colon + 1 < spec.size() &&
            spec[colon + 1] == '/',
        "--fetch expects PORT:/PATH, got '" + spec + "'");
  const int port = std::atoi(spec.substr(0, colon).c_str());
  const std::string body =
      http_fetch(port, spec.substr(colon + 1), "--fetch");
  std::fwrite(body.data(), 1, body.size(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool any = false;
    for (int i = 1; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string path = argv[i + 1];
      if (flag == "--trace") check_trace(path);
      else if (flag == "--profile") check_profile(path);
      else if (flag == "--metrics") check_metrics(path);
      else if (flag == "--bench") check_bench(path);
      else if (flag == "--tune-cache") check_tune_cache(path);
      else if (flag == "--prom") check_prom(path);
      else if (flag == "--prom-scrape") scrape_prom(path);
      else if (flag == "--postmortem") check_postmortem(path);
      else if (flag == "--fetch") fetch_url(path);
      else t2c::fail("unknown flag '" + flag + "'");
      any = true;
    }
    check(any, "usage: t2c_json_check [--trace F] [--profile F] "
               "[--metrics F] [--bench F] [--tune-cache F] [--prom F] "
               "[--prom-scrape PORT] [--postmortem F] [--fetch PORT:/PATH]");
    return 0;
  } catch (const t2c::Error& e) {
    std::fprintf(stderr, "t2c_json_check: %s\n", e.what());
    return 1;
  }
}
