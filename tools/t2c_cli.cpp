// t2c_cli — the whole toolkit from the command line.
//
//   t2c_cli --model resnet20 --dataset cifar10_sim --trainer qat
//           --wq sawb --aq pact --wbits 4 --abits 4 --epochs 8
//           --out run_out --emit-verilog
//
// Trains (or calibrates) the requested configuration, converts it to the
// integer-only deploy graph, reports fake-quant and deployed accuracy, and
// writes the export artifacts. `--list` prints every registered model,
// dataset, trainer and quantizer.
//
// Observability: `--log-level LEVEL` tunes the structured log output
// (trace|debug|info|warn|error|off), `--metrics-json PATH` dumps the metrics
// registry snapshot, and `--trace-json PATH` writes a Chrome trace_event
// file (multi-track: one lane per pool worker plus counter tracks)
// loadable in chrome://tracing or Perfetto. `--profile` prints the per-op
// roofline table (time %, percentiles, arithmetic intensity, effective
// GFLOP/s and GB/s) for the integer deploy phase; `--profile-json PATH`
// dumps the same report as JSON. Every *-json flag accepts `-` to stream
// the JSON to stdout instead of a file.
//
// Live monitoring: `--serve-obs PORT` starts the telemetry plane and an
// HTTP exporter on 127.0.0.1 serving /metrics (Prometheus text exposition
// with sliding-window percentiles and OpenMetrics exemplars on latency
// buckets), /healthz (watchdog; 503 bodies name the stalled step),
// /buildinfo, /requests, /requests/<id> (per-request detail incl. the
// per-op trail for reservoir-retained requests) and /exemplars (the
// tail-latency reservoir); `--loop N` soaks the deployed graph with N
// integer inferences across two client threads so there is live traffic
// to scrape.
//
// Postmortems: `--postmortem-dir DIR` installs async-signal-safe crash
// handlers that write a flight-recorder bundle (t2c.postmortem.v1) on
// SIGSEGV/SIGABRT/SIGBUS/SIGFPE; `--stall-ms MS` tunes the watchdog
// deadline and `--stall-fatal` escalates a stall into a bundle + abort.
// `--version` prints the full build_info stamp and exits.
//
// Dual-path audit: `--audit` replays one test batch through the fake-quant
// and integer paths and prints the per-layer divergence table (SQNR,
// saturation, range utilization); `--audit-json PATH` dumps the report,
// `--audit-golden-dir DIR` writes per-op golden hex vectors for RTL replay,
// `--audit-threshold-db DB` sets the first-divergence threshold.
//
// Kernel tuning: `--tune off|heuristic|full` selects the solver-registry
// mode (DESIGN.md §3.12) — heuristic (default) follows the static
// priority order plus any cached winners, full benchmarks the applicable
// solvers per problem shape and persists the winners, off ignores the
// cache entirely. `--tune-cache PATH` overrides the on-disk cache
// location (default ~/.cache/t2c/tuning.json, or $T2C_TUNE_CACHE);
// `--list-solvers` prints the registered solver table and exits. Every
// mode produces bit-identical integer outputs — tuning only ever picks
// among exact kernels.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "audit/dualpath_audit.h"
#include "core/parallel.h"
#include "core/registry.h"
#include "core/t2c.h"
#include "deploy/exec_plan.h"
#include "models/models.h"
#include "obs/crash.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/pmu.h"
#include "obs/profile.h"
#include "obs/prom.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/solver.h"
#include "util/build_info.h"
#include "xport/verilog.h"

namespace {

using namespace t2c;

struct Args {
  std::string model = "resnet20";
  std::string dataset = "cifar10_sim";
  std::string trainer = "qat";
  std::string wq = "minmax";
  std::string aq = "minmax";
  int wbits = 8;
  int abits = 8;
  int stem_head_bits = 0;
  int epochs = 8;
  float lr = 0.1F;
  float width = 0.5F;
  std::string out = "t2c_cli_out";
  bool emit_verilog = false;
  bool list = false;
  std::string log_level;
  std::string metrics_json;
  std::string trace_json;
  bool profile = false;
  std::string profile_json;
  std::string pmu;  ///< --pmu MODE; empty = auto when profiling, else off
  bool audit = false;
  std::string audit_json;
  std::string audit_golden_dir;
  double audit_threshold_db = 20.0;
  int threads = 0;  ///< 0 = leave the pool at its T2C_THREADS/HW default
  int opt_level = 2;      ///< deploy-graph pass pipeline level (0..2)
  std::string plan_dump;  ///< render the execution plan ('-' = stdout)
  int serve_obs = -1;  ///< /metrics port; -1 = off, 0 = ephemeral
  int loop = 0;        ///< soak mode: total run_int iterations after deploy
  std::string tune = "heuristic";  ///< solver-registry mode
  std::string tune_cache;          ///< cache override; empty = default path
  bool list_solvers = false;
  std::string postmortem_dir;  ///< crash-handler bundle dir; empty = off
  int stall_ms = 0;            ///< watchdog deadline override; 0 = default
  bool stall_fatal = false;    ///< escalate a watchdog stall to a bundle
  std::string selftest_crash;  ///< hidden: "segv" | "stall" fault injection
};

DatasetSpec dataset_by_name(const std::string& name) {
  static const std::map<std::string, DatasetSpec (*)()> kSets = {
      {"cifar10_sim", &cifar10_sim},   {"cifar100_sim", &cifar100_sim},
      {"imagenet_sim", &imagenet_sim}, {"aircraft_sim", &aircraft_sim},
      {"flowers_sim", &flowers_sim},   {"food101_sim", &food101_sim},
  };
  auto it = kSets.find(name);
  if (it == kSets.end()) {
    std::string known;
    for (const auto& [k, v] : kSets) known += k + " ";
    fail("unknown dataset '" + name + "'; known: " + known);
  }
  return it->second();
}

std::unique_ptr<Sequential> model_by_name(const std::string& name,
                                          const ModelConfig& cfg) {
  if (name == "resnet20") return make_resnet20(cfg);
  if (name == "resnet18") return make_resnet18(cfg);
  if (name == "resnet50") return make_resnet50(cfg);
  if (name == "mobilenet_v1") return make_mobilenet_v1(cfg);
  if (name == "vit") return make_vit(cfg);
  fail("unknown model '" + name +
       "'; known: resnet20 resnet18 resnet50 mobilenet_v1 vit");
}

Args parse(int argc, char** argv) {
  Args a;
  const auto want = [&](int i) -> const char* {
    check(i + 1 < argc, std::string("missing value for ") + argv[i]);
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    if (f == "--model") a.model = want(i++);
    else if (f == "--dataset") a.dataset = want(i++);
    else if (f == "--trainer") a.trainer = want(i++);
    else if (f == "--wq") a.wq = want(i++);
    else if (f == "--aq") a.aq = want(i++);
    else if (f == "--wbits") a.wbits = std::atoi(want(i++));
    else if (f == "--abits") a.abits = std::atoi(want(i++));
    else if (f == "--stem-head-bits") a.stem_head_bits = std::atoi(want(i++));
    else if (f == "--epochs") a.epochs = std::atoi(want(i++));
    else if (f == "--lr") a.lr = static_cast<float>(std::atof(want(i++)));
    else if (f == "--width") a.width = static_cast<float>(std::atof(want(i++)));
    else if (f == "--out") a.out = want(i++);
    else if (f == "--emit-verilog") a.emit_verilog = true;
    else if (f == "--list") a.list = true;
    else if (f == "--log-level") a.log_level = want(i++);
    else if (f == "--metrics-json") a.metrics_json = want(i++);
    else if (f == "--trace-json") a.trace_json = want(i++);
    else if (f == "--profile") a.profile = true;
    else if (f == "--profile-json") {
      a.profile_json = want(i++);
      a.profile = true;
    }
    else if (f == "--pmu") a.pmu = want(i++);
    else if (f == "--audit") a.audit = true;
    else if (f == "--audit-json") { a.audit_json = want(i++); a.audit = true; }
    else if (f == "--audit-golden-dir") {
      a.audit_golden_dir = want(i++);
      a.audit = true;
    }
    else if (f == "--audit-threshold-db") {
      a.audit_threshold_db = std::atof(want(i++));
      a.audit = true;
    }
    else if (f == "--threads") {
      a.threads = std::atoi(want(i++));
      check(a.threads >= 1, "--threads must be >= 1");
    }
    else if (f == "--opt-level") {
      a.opt_level = std::atoi(want(i++));
      check(a.opt_level >= 0 && a.opt_level <= 2,
            "--opt-level must be 0, 1, or 2");
    }
    else if (f == "--plan-dump") a.plan_dump = want(i++);
    else if (f == "--serve-obs") {
      a.serve_obs = std::atoi(want(i++));
      check(a.serve_obs >= 0 && a.serve_obs <= 65535,
            "--serve-obs PORT must be in [0, 65535] (0 = ephemeral)");
    }
    else if (f == "--loop") {
      a.loop = std::atoi(want(i++));
      check(a.loop >= 1, "--loop must be >= 1");
    }
    else if (f == "--tune") {
      a.tune = want(i++);
      check(a.tune == "off" || a.tune == "heuristic" || a.tune == "full",
            "--tune must be off, heuristic, or full");
    }
    else if (f == "--tune-cache") a.tune_cache = want(i++);
    else if (f == "--list-solvers") a.list_solvers = true;
    else if (f == "--postmortem-dir") a.postmortem_dir = want(i++);
    else if (f == "--stall-ms") {
      a.stall_ms = std::atoi(want(i++));
      check(a.stall_ms >= 1, "--stall-ms must be >= 1");
    }
    else if (f == "--stall-fatal") a.stall_fatal = true;
    else if (f == "--selftest-crash") {
      a.selftest_crash = want(i++);
      check(a.selftest_crash == "segv" || a.selftest_crash == "stall",
            "--selftest-crash must be segv or stall");
    }
    else if (f == "--version") {
      const BuildInfo b = build_info();
      std::printf("t2c_cli %s\n", b.git_sha.c_str());
      std::printf("  compiler:  %s\n", b.compiler.c_str());
      std::printf("  flags:     %s\n", b.flags.c_str());
      std::printf("  isa:       %s\n", b.isa.c_str());
      std::printf("  cpu_model: %s\n", b.cpu_model.c_str());
      std::printf("  threads:   %d\n", b.threads);
      std::exit(0);
    }
    else if (f == "--help") {
      std::puts(
          "usage: t2c_cli [--model M] [--dataset D] [--trainer T]\n"
          "               [--wq Q] [--aq Q] [--wbits N] [--abits N]\n"
          "               [--stem-head-bits N] [--epochs N] [--lr F]\n"
          "               [--width F] [--out DIR] [--emit-verilog] [--list]\n"
          "               [--log-level trace|debug|info|warn|error|off]\n"
          "               [--metrics-json PATH] [--trace-json PATH]\n"
          "               [--profile] [--profile-json PATH]\n"
          "               [--pmu off|auto|cputime|hw]\n"
          "               [--audit] [--audit-json PATH]\n"
          "               [--audit-golden-dir DIR] [--audit-threshold-db DB]\n"
          "               [--threads N] [--opt-level 0|1|2]\n"
          "               [--plan-dump PATH]\n"
          "               [--serve-obs PORT] [--loop N]\n"
          "               [--tune off|heuristic|full] [--tune-cache PATH]\n"
          "               [--list-solvers] [--version]\n"
          "               [--postmortem-dir DIR] [--stall-ms MS]\n"
          "               [--stall-fatal]\n"
          "JSON PATHs accept '-' for stdout.\n"
          "--threads sizes the worker pool (default: T2C_THREADS env var,\n"
          "else hardware concurrency); integer outputs are bit-identical\n"
          "at any setting.\n"
          "--opt-level selects the deploy-graph pass pipeline (0 = as\n"
          "emitted, 1 = dedup + dead-value elimination, 2 = + exact requant\n"
          "folding; outputs are bit-identical at every level).\n"
          "--plan-dump writes the liveness-planned execution schedule\n"
          "(arena slots, in-place steps; '-' = stdout).\n"
          "--profile times every executed deploy step and prints the per-op\n"
          "roofline table (time %, p50/p95/p99, arithmetic intensity,\n"
          "effective GFLOP/s and GB/s); op counts and FLOP/byte totals are\n"
          "bit-identical at any --threads setting.\n"
          "--pmu selects the measured-counter tier for --profile: auto\n"
          "(default when profiling) tries perf_event_open and degrades to\n"
          "per-thread CPU time; hw insists and warns on fallback; cputime\n"
          "skips the probe; off disables measurement. T2C_PMU_RAW=r<hex>,..\n"
          "adds up to 4 raw PMU events as extra profile columns.\n"
          "--serve-obs starts the live telemetry plane and an HTTP\n"
          "exporter on 127.0.0.1:PORT (0 picks an ephemeral port; the\n"
          "chosen port is printed) serving /metrics (Prometheus text),\n"
          "/healthz (stall watchdog), /buildinfo, and /requests.\n"
          "--loop N runs N extra integer inferences across two client\n"
          "threads after deployment (soak mode) so the windowed\n"
          "percentiles on /metrics have live traffic to digest.\n"
          "--tune selects the kernel-solver mode: heuristic (default)\n"
          "follows the registry's static priority order plus any cached\n"
          "winners, full benchmarks the applicable solvers per problem\n"
          "shape and persists the winners to the tuning cache, off\n"
          "ignores the cache. Outputs are bit-identical in every mode.\n"
          "--tune-cache overrides the cache path (default\n"
          "$T2C_TUNE_CACHE, else ~/.cache/t2c/tuning.json); the cache is\n"
          "keyed by CPU model + build sha and ignored on mismatch.\n"
          "--list-solvers prints the registered solver table and exits.\n"
          "--version prints the build_info stamp (sha, compiler, flags,\n"
          "ISA level, CPU model, threads) and exits.\n"
          "--postmortem-dir installs async-signal-safe crash handlers\n"
          "(SIGSEGV/SIGABRT/SIGBUS/SIGFPE) and enables the flight\n"
          "recorder; a fatal signal writes a postmortem JSON bundle\n"
          "(build_info, last flight events, active requests, backtrace)\n"
          "under DIR before re-raising.\n"
          "--stall-ms overrides the /healthz stall-watchdog deadline\n"
          "(default 10000, or $T2C_STALL_MS).\n"
          "--stall-fatal (requires --postmortem-dir) escalates a watchdog\n"
          "stall to a postmortem bundle + abort instead of just a 503.");
      std::exit(0);
    } else {
      fail("unknown flag '" + f + "' (try --help)");
    }
  }
  return a;
}

// Per-op latency / saturation table from the metrics snapshot: one row per
// `deploy.op_ms.<kind>[:<label>]` histogram, joined with the matching
// `deploy.sat.*` counter, sorted by total time spent.
void print_op_table(const obs::MetricsSnapshot& snap) {
  struct Row {
    std::string key;
    obs::HistogramStats h;
    std::int64_t sat = 0;
    bool has_sat = false;
  };
  const std::string lat_prefix = "deploy.op_ms.";
  std::vector<Row> rows;
  for (const auto& [name, h] : snap.histograms) {
    if (name.rfind(lat_prefix, 0) != 0) continue;
    Row r;
    r.key = name.substr(lat_prefix.size());
    r.h = h;
    const auto it = snap.counters.find("deploy.sat." + r.key);
    if (it != snap.counters.end()) {
      r.sat = it->second;
      r.has_sat = true;
    }
    rows.push_back(std::move(r));
  }
  if (rows.empty()) return;
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.h.sum > b.h.sum; });
  std::printf("\nper-op deploy profile (by total time):\n");
  std::printf("  %-44s %8s %9s %9s %9s %10s\n", "op", "calls", "mean ms",
              "p50 ms", "p95 ms", "saturated");
  const std::size_t shown = std::min<std::size_t>(rows.size(), 24);
  for (std::size_t i = 0; i < shown; ++i) {
    const Row& r = rows[i];
    char sat[24];
    if (r.has_sat) {
      std::snprintf(sat, sizeof(sat), "%lld",
                    static_cast<long long>(r.sat));
    } else {
      std::snprintf(sat, sizeof(sat), "-");
    }
    std::printf("  %-44s %8lld %9.3f %9.3f %9.3f %10s\n", r.key.c_str(),
                static_cast<long long>(r.h.count), r.h.mean, r.h.p50,
                r.h.p95, sat);
  }
  if (rows.size() > shown) {
    std::printf("  ... and %zu more ops\n", rows.size() - shown);
  }
  const auto total = snap.counters.find("deploy.sat.total");
  if (total != snap.counters.end()) {
    std::printf("  total saturated values: %lld\n",
                static_cast<long long>(total->second));
  }
}

// One-line pool digest from the metrics snapshot: how many pooled regions
// ran, how the chunks balanced, and the region critical-path percentiles.
void print_pool_stats(const obs::MetricsSnapshot& snap) {
  const auto regions = snap.counters.find("pool.regions");
  if (regions == snap.counters.end() || regions->second == 0) return;
  const auto chunks = snap.counters.find("pool.chunks");
  std::printf("pool: %d threads, %lld regions, %lld chunks",
              par::max_threads(),
              static_cast<long long>(regions->second),
              static_cast<long long>(
                  chunks == snap.counters.end() ? 0 : chunks->second));
  const auto imb = snap.histograms.find("pool.imbalance");
  if (imb != snap.histograms.end() && imb->second.count > 0) {
    std::printf(", imbalance p50/p95 %.2f/%.2f", imb->second.p50,
                imb->second.p95);
  }
  const auto reg_ms = snap.histograms.find("pool.region_ms");
  if (reg_ms != snap.histograms.end() && reg_ms->second.count > 0) {
    std::printf(", region p50/p99 %.3f/%.3f ms", reg_ms->second.p50,
                reg_ms->second.p99);
  }
  std::printf("\n");
}

// Emits a JSON document to `path`, where "-" means stdout. File writes log
// the resolved absolute path so artifact locations survive in the log.
void emit_json(const std::string& path, const std::string& what,
               const std::string& json) {
  if (path == "-") {
    std::printf("%s\n", json.c_str());
    return;
  }
  std::ofstream os(path);
  check(os.good(), what + ": cannot open for writing: " + path);
  os << json << '\n';
  obs::log_info(what, ": wrote ",
                std::filesystem::absolute(path).string());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (!a.log_level.empty()) {
      obs::set_log_level(obs::parse_log_level(a.log_level));
    }
    if (a.threads > 0) par::set_max_threads(a.threads);
    // The CLI is a reporting tool: metrics are always on (the per-op table
    // below depends on them); tracing only when someone asked for the file.
    obs::set_metrics_enabled(true);
    obs::set_trace_enabled(!a.trace_json.empty());
    obs::set_profile_enabled(a.profile);
    if (a.stall_ms > 0) {
      obs::telemetry().set_stall_deadline_ms(static_cast<double>(a.stall_ms));
    }
    // Crash handlers before any heavy work: once installed, the flight
    // recorder is on and a fatal signal anywhere below leaves a bundle.
    if (!a.postmortem_dir.empty()) {
      obs::CrashConfig pm;
      pm.dir = a.postmortem_dir;
      check(obs::install_crash_handlers(pm),
            "crash: failed to install handlers");
    }
    if (a.stall_fatal) {
      check(!a.postmortem_dir.empty(),
            "--stall-fatal requires --postmortem-dir");
      obs::telemetry().set_stall_action(
          [](double age_ms) { obs::crash_escalate_stall(age_ms); });
      obs::telemetry().start();
    }
    // Live plane first so /metrics answers during training and conversion
    // too, not just once the soak loop starts.
    obs::PromExporter exporter;
    if (a.serve_obs >= 0) {
      obs::telemetry().start();
      check(exporter.start(a.serve_obs), "obs: exporter failed to bind");
      std::printf("obs: serving /metrics on port %d\n", exporter.port());
      std::fflush(stdout);
    }
    // Counter measurement defaults to auto whenever profiling is on: the
    // probe resolves the best available tier (hardware group, CPU-time
    // fallback, or disabled via --pmu off) and the profile banner / logs
    // say which one actually ran.
    const obs::PmuMode pmu_mode = !a.pmu.empty()
                                      ? obs::parse_pmu_mode(a.pmu.c_str())
                                      : (a.profile ? obs::PmuMode::kAuto
                                                   : obs::PmuMode::kOff);
    obs::set_pmu_mode(pmu_mode);
    if (a.profile) {
      obs::log_info("pmu: tier ", obs::pmu_tier_name(obs::pmu_tier()));
    }
    if (a.list) {
      std::printf("models:     resnet20 resnet18 resnet50 mobilenet_v1 vit\n");
      std::printf("datasets:   cifar10_sim cifar100_sim imagenet_sim "
                  "aircraft_sim flowers_sim food101_sim\n");
      std::printf("trainers:  ");
      for (const auto& t : registered_trainers()) std::printf(" %s", t.c_str());
      std::printf("\nquantizers:");
      for (const auto& q : registered_quantizers()) {
        std::printf(" %s", q.c_str());
      }
      std::printf("\n");
      return 0;
    }
    if (a.list_solvers) {
      std::printf("registered solvers (priority order per op):\n");
      std::printf("  %-10s %-22s %-8s %s\n", "op", "solver", "tunable",
                  "gates");
      for (const auto& s : solver::Registry::instance().solvers()) {
        std::printf("  %-10s %-22s %-8s %s\n", solver::op_kind_name(s.op),
                    s.name.c_str(), s.tunable ? "yes" : "no",
                    s.gates.empty() ? "-" : s.gates.c_str());
      }
      return 0;
    }

    // Solver-registry mode and tuning cache: load before any conversion so
    // pass_select_solvers sees the cached winners; a corrupt or
    // host-mismatched cache degrades to the heuristic order with a warning,
    // never an error.
    solver::Registry& solvers = solver::Registry::instance();
    const solver::TuneMode tune_mode =
        a.tune == "off" ? solver::TuneMode::kOff
                        : (a.tune == "full" ? solver::TuneMode::kFull
                                            : solver::TuneMode::kHeuristic);
    solvers.set_mode(tune_mode);
    const std::string tune_cache_path =
        a.tune_cache.empty() ? solver::default_cache_path() : a.tune_cache;
    if (tune_mode != solver::TuneMode::kOff) {
      std::string warn;
      if (!solvers.load_cache(tune_cache_path, &warn) && !warn.empty()) {
        std::printf("tune: %s\n", warn.c_str());
      }
    }

    const DatasetSpec spec = dataset_by_name(a.dataset);
    SyntheticImageDataset data(spec);
    ModelConfig mc;
    mc.num_classes = spec.classes;
    mc.width_mult = a.width;
    mc.qcfg.weight_quantizer = a.wq;
    mc.qcfg.act_quantizer = a.aq;
    mc.qcfg.wbits = a.wbits;
    mc.qcfg.abits = a.abits;
    mc.stem_head_bits = a.stem_head_bits;
    auto model = model_by_name(a.model, mc);

    std::printf("%s on %s: %s trainer, W%d/A%d (%s/%s)\n", a.model.c_str(),
                a.dataset.c_str(), a.trainer.c_str(), a.wbits, a.abits,
                a.wq.c_str(), a.aq.c_str());

    TrainerOptions opts;
    opts.train.epochs = a.epochs;
    opts.train.lr = a.lr;
    if (a.trainer == "ssl_xd") {
      opts.teacher_factory = [&] { return model_by_name(a.model, mc); };
    }
    {
      const obs::TraceSpan span("train", "cli");
      // PTQ trainers calibrate a pre-trained model: give them fp32 weights.
      if (a.trainer.rfind("ptq", 0) == 0) {
        set_quantizer_bypass(*model, true);
        TrainerOptions fp = opts;
        auto pre = make_trainer("supervised", *model, data, fp);
        pre->fit();
        std::printf("fp32 pre-training accuracy: %.2f%%\n", pre->evaluate());
        set_quantizer_bypass(*model, false);
      }
      auto trainer = make_trainer(a.trainer, *model, data, std::move(opts));
      trainer->fit();
      std::printf("fake-quant accuracy: %.2f%%\n", trainer->evaluate());
    }

    freeze_quantizers(*model);
    ConvertConfig ccfg;
    ccfg.input_shape = {spec.channels, spec.height, spec.width};
    ccfg.opt_level = a.opt_level;
    T2C t2c_api(*model, ccfg);
    DeployModel chip = [&] {
      const obs::TraceSpan span("convert", "cli");
      return t2c_api.nn2chip(/*save_model=*/true, a.out);
    }();
    if (!a.plan_dump.empty()) {
      emit_json(a.plan_dump, "plan", chip.plan().render(chip));
    }
    {
      const obs::TraceSpan span("deploy", "cli");
      std::printf("integer-deployed accuracy: %.2f%%\n",
                  chip.evaluate(data.test_images(), data.test_labels()));
    }
    if (a.loop > 0) {
      // Soak mode: repeated integer inference across client threads, each
      // iteration wrapped in a RequestScope so /metrics and /requests show
      // per-request latency and attribution while this runs.
      const obs::TraceSpan span("soak", "cli");
      Shape one_shape = data.test_images().shape();
      one_shape[0] = 1;
      Tensor one(std::move(one_shape));
      for (std::int64_t i = 0; i < one.numel(); ++i) {
        one[i] = data.test_images()[i];
      }
      const ITensor q = chip.quantize_input(one);
      constexpr int kClients = 2;
      std::printf("soak: %d iterations across %d client threads\n", a.loop,
                  kClients);
      std::fflush(stdout);
      std::atomic<int> remaining{a.loop};
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
          while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
            const obs::RequestScope req;
            (void)chip.run_int(q);
          }
        });
      }
      for (auto& t : clients) t.join();
      std::printf("soak: done\n");
      std::fflush(stdout);
    }
    if (!a.selftest_crash.empty()) {
      // Fault injection for the postmortem integration tests: run a few
      // real inferences first so the flight rings hold genuine step and
      // request history, then crash or wedge on purpose.
      Shape s1 = data.test_images().shape();
      s1[0] = 1;
      Tensor one(std::move(s1));
      for (std::int64_t i = 0; i < one.numel(); ++i) {
        one[i] = data.test_images()[i];
      }
      const ITensor q1 = chip.quantize_input(one);
      for (int i = 0; i < 3; ++i) {
        const obs::RequestScope req;
        (void)chip.run_int(q1);
      }
      std::printf("selftest-crash: %s\n", a.selftest_crash.c_str());
      std::fflush(stdout);
      if (a.selftest_crash == "segv") {
        volatile int* vp = nullptr;
        *vp = 42;
      }
      // stall: stop stepping and wait for the watchdog to escalate (with
      // --stall-fatal that ends in a bundle + abort; without it, forever).
      for (;;) {
        std::this_thread::sleep_for(std::chrono::seconds(1));
      }
    }
    std::printf("%s\n", chip.summary_text().c_str());
    std::printf("artifacts under %s/ (model.t2c, hex/)\n", a.out.c_str());
    if (a.audit) {
      const obs::TraceSpan span("audit", "cli");
      // One small batch is enough: the auditor compares every intermediate
      // tensor, not just the logits.
      const std::int64_t n = std::min<std::int64_t>(8, data.test_images().size(0));
      Shape s = data.test_images().shape();
      s[0] = n;
      Tensor batch(std::move(s));
      // [N,C,H,W] storage is contiguous: the first n images are a flat prefix.
      for (std::int64_t i = 0; i < batch.numel(); ++i) {
        batch[i] = data.test_images()[i];
      }
      AuditConfig acfg;
      acfg.threshold_db = a.audit_threshold_db;
      acfg.golden_dir = a.audit_golden_dir;
      const AuditReport report =
          run_dualpath_audit(*model, chip, batch, acfg);
      std::printf("\ndual-path divergence audit (%lld images):\n%s",
                  static_cast<long long>(n), report.table_text().c_str());
      if (!a.audit_golden_dir.empty()) {
        std::printf("golden vectors: %zu files under %s/\n",
                    report.golden_files.size(), a.audit_golden_dir.c_str());
      }
      if (!a.audit_json.empty()) {
        emit_json(a.audit_json, "audit", report.to_json());
      }
    }
    if (a.emit_verilog) {
      std::printf("testbench: %s\n",
                  emit_verilog_testbench(chip, a.out + "/rtl", 8).c_str());
    }

    print_op_table(obs::metrics().snapshot());
    if (a.profile) {
      const obs::ProfileReport report = obs::profiler().report();
      std::printf("\n%s", report.table_text().c_str());
      print_pool_stats(obs::metrics().snapshot());
      if (!a.profile_json.empty()) {
        emit_json(a.profile_json, "profile", report.to_json());
      }
    }
    if (tune_mode == solver::TuneMode::kFull) {
      const solver::TuneStats ts = solvers.stats();
      std::printf("tune: mode=full problems=%lld hits=%lld benchmarked=%lld\n",
                  static_cast<long long>(ts.problems),
                  static_cast<long long>(ts.hits),
                  static_cast<long long>(ts.benchmarked));
      std::string warn;
      if (!solvers.save_cache(tune_cache_path, &warn)) {
        std::printf("tune: %s\n", warn.c_str());
      } else if (ts.benchmarked > 0) {
        std::printf("tune: cache written to %s\n", tune_cache_path.c_str());
      }
    }
    if (!a.metrics_json.empty()) {
      emit_json(a.metrics_json, "metrics", obs::metrics().to_json());
    }
    if (!a.trace_json.empty()) {
      std::printf("chrome trace: %zu events\n", obs::tracer().size());
      emit_json(a.trace_json, "trace", obs::tracer().to_json());
    }
    // Exporter and aggregator go first: both read the registry, so they
    // must be down before it is torn out from under them.
    if (a.serve_obs >= 0) {
      exporter.stop();
      obs::telemetry().stop();
    }
    // Registry teardown also flips metrics off. Any Counter/Gauge/Histogram
    // reference taken above dangles after this line — this must stay the
    // last registry touch before return.
    obs::metrics().reset();
    return 0;
  } catch (const t2c::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
