#!/usr/bin/env sh
# Live telemetry-plane gate, driven by the `t2c_prom_valid` ctest entry:
#   check_prom.sh <t2c_cli> <t2c_json_check> <workdir>
#
# Boots t2c_cli with --serve-obs 0 --loop N (train 1 epoch, deploy, then
# soak the integer graph across two client threads), scrapes /metrics over
# a raw socket while the soak is running, validates the body as Prometheus
# text exposition (HELP/TYPE coverage, label escaping, cumulative
# histogram buckets, +Inf == _count), and asserts the acceptance signal:
# live sliding-window percentiles for the deploy.step.latency series.
set -e
CLI="$1"
CHECK="$2"
WORK="$3"
[ -n "$CLI" ] && [ -n "$CHECK" ] && [ -n "$WORK" ] || {
  echo "usage: check_prom.sh <t2c_cli> <t2c_json_check> <workdir>" >&2
  exit 2
}
mkdir -p "$WORK"
cd "$WORK"
rm -f cli.log live.prom
"$CLI" --model resnet20 --width 0.25 --epochs 1 --threads 4 --out cli_out \
       --serve-obs 0 --loop 4000 > cli.log 2>&1 &
CLI_PID=$!

PORT=""
i=0
while [ "$i" -lt 600 ]; do
  PORT=$(sed -n 's/^obs: serving \/metrics on port \([0-9][0-9]*\)$/\1/p' \
         cli.log 2>/dev/null | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.5
  i=$((i + 1))
done
[ -n "$PORT" ] || {
  echo "no exporter port in cli.log; log follows" >&2
  cat cli.log >&2
  exit 1
}
i=0
while [ "$i" -lt 600 ]; do
  grep -q '^soak:' cli.log 2>/dev/null && break
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.5
  i=$((i + 1))
done

T2C_PROM_DUMP=live.prom "$CHECK" --prom-scrape "$PORT"
"$CHECK" --prom live.prom

# The acceptance signal: windowed percentiles of the per-step latency
# aggregate, digested from live traffic.
for m in t2c_tele_p50_ms t2c_tele_p95_ms t2c_tele_p99_ms; do
  grep -q "^${m}{series=\"deploy.step.latency\"" live.prom || {
    echo "live.prom lacks ${m} for deploy.step.latency" >&2
    exit 1
  }
done
grep -q '^t2c_healthy 1$' live.prom || {
  echo "live.prom does not report t2c_healthy 1" >&2
  exit 1
}

wait "$CLI_PID" || {
  echo "t2c_cli failed; log follows" >&2
  cat cli.log >&2
  exit 1
}
echo "prom gate ok: port $PORT, $(wc -l < live.prom) exposition lines"
