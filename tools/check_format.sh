#!/bin/sh
# Lightweight formatting / hygiene gate, run by the `check_format` CMake
# target and as a ctest case. Checks, over the C++ sources in src/, tests/,
# tools/, bench/ and examples/:
#
#   1. no tab characters
#   2. no trailing whitespace
#   3. no CRLF line endings
#   4. every file ends with a newline
#   5. no direct stdio/iostream output from library code (src/) — the
#      structured logger (src/obs/log.*) is the only sanctioned writer.
#
# Exits nonzero with a per-violation report; prints nothing on success.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 1

files=$(find src tests tools bench examples \
          -name '*.h' -o -name '*.cpp' 2>/dev/null | sort)
[ -n "$files" ] || { echo "check_format: no sources found" >&2; exit 1; }

status=0

bad=$(printf '%s\n' "$files" | xargs grep -l -P '\t' 2>/dev/null)
if [ -n "$bad" ]; then
  echo "check_format: tab characters in:" >&2
  printf '  %s\n' $bad >&2
  status=1
fi

bad=$(printf '%s\n' "$files" | xargs grep -l -P '[ \t]+$' 2>/dev/null)
if [ -n "$bad" ]; then
  echo "check_format: trailing whitespace in:" >&2
  printf '  %s\n' $bad >&2
  status=1
fi

bad=$(printf '%s\n' "$files" | xargs grep -l -P '\r$' 2>/dev/null)
if [ -n "$bad" ]; then
  echo "check_format: CRLF line endings in:" >&2
  printf '  %s\n' $bad >&2
  status=1
fi

for f in $files; do
  if [ -s "$f" ] && [ "$(tail -c 1 "$f" | wc -l)" -eq 0 ]; then
    echo "check_format: missing final newline: $f" >&2
    status=1
  fi
done

# Library code must not write to stdout/stderr directly; everything goes
# through the obs logger so sinks and levels stay in control.
lib_files=$(printf '%s\n' "$files" | grep '^src/' | grep -v '^src/obs/log')
bad=$(printf '%s\n' "$lib_files" | \
      xargs grep -l -E 'std::(printf|puts|fprintf|cout|cerr)' 2>/dev/null)
if [ -n "$bad" ]; then
  echo "check_format: direct console output in library code (use obs::log):" >&2
  printf '  %s\n' $bad >&2
  status=1
fi

exit $status
