#!/usr/bin/env sh
# Flight-recorder / postmortem acceptance gate, driven by the
# `t2c_postmortem_valid` ctest entry:
#   check_postmortem.sh <t2c_cli> <t2c_json_check> <workdir>
#
# Three legs:
#   1. forced SIGSEGV  — t2c_cli --postmortem-dir --selftest-crash segv
#      must die by signal and leave a bundle that t2c_json_check
#      --postmortem accepts (schema, build_info, flight events, backtrace);
#   2. forced stall    — --stall-ms 300 --stall-fatal --selftest-crash
#      stall must escalate the watchdog to a stall bundle and abort;
#   3. live exemplars  — a --serve-obs soak's mid-run /metrics scrape must
#      carry at least one OpenMetrics exemplar on a latency histogram
#      bucket, and an id pulled from /exemplars must resolve on
#      /requests/<id>.
set -e
CLI="$1"
CHECK="$2"
WORK="$3"
[ -n "$CLI" ] && [ -n "$CHECK" ] && [ -n "$WORK" ] || {
  echo "usage: check_postmortem.sh <t2c_cli> <t2c_json_check> <workdir>" >&2
  exit 2
}
mkdir -p "$WORK"
cd "$WORK"
rm -rf pm_segv pm_stall cli_out segv.log stall.log soak.log live.prom

# ---- leg 1: forced SIGSEGV -> signal bundle ----
set +e
"$CLI" --model resnet20 --width 0.25 --epochs 1 --threads 4 --out cli_out \
       --postmortem-dir pm_segv --selftest-crash segv > segv.log 2>&1
RC=$?
set -e
[ "$RC" -gt 128 ] || {
  echo "segv selftest did not die by signal (rc=$RC); log follows" >&2
  cat segv.log >&2
  exit 1
}
SEGV_BUNDLE=$(ls pm_segv/postmortem.*.json 2>/dev/null | head -n 1)
[ -n "$SEGV_BUNDLE" ] || {
  echo "segv selftest left no bundle under pm_segv/" >&2
  cat segv.log >&2
  exit 1
}
"$CHECK" --postmortem "$SEGV_BUNDLE"
grep -q '"kind":"signal"' "$SEGV_BUNDLE" || {
  echo "$SEGV_BUNDLE is not a signal bundle" >&2
  exit 1
}

# ---- leg 2: forced watchdog stall -> stall bundle ----
set +e
"$CLI" --model resnet20 --width 0.25 --epochs 1 --threads 4 --out cli_out \
       --postmortem-dir pm_stall --stall-ms 300 --stall-fatal \
       --selftest-crash stall > stall.log 2>&1
RC=$?
set -e
[ "$RC" -gt 128 ] || {
  echo "stall selftest did not abort (rc=$RC); log follows" >&2
  cat stall.log >&2
  exit 1
}
STALL_BUNDLE=$(ls pm_stall/postmortem.*.json 2>/dev/null | head -n 1)
[ -n "$STALL_BUNDLE" ] || {
  echo "stall selftest left no bundle under pm_stall/" >&2
  cat stall.log >&2
  exit 1
}
"$CHECK" --postmortem "$STALL_BUNDLE"
grep -q '"kind":"stall"' "$STALL_BUNDLE" || {
  echo "$STALL_BUNDLE is not a stall bundle" >&2
  exit 1
}

# ---- leg 3: mid-soak exemplars resolving to request detail ----
"$CLI" --model resnet20 --width 0.25 --epochs 1 --threads 4 --out cli_out \
       --serve-obs 0 --loop 300000 > soak.log 2>&1 &
CLI_PID=$!
PORT=""
i=0
while [ "$i" -lt 600 ]; do
  PORT=$(sed -n 's/^obs: serving \/metrics on port \([0-9][0-9]*\)$/\1/p' \
         soak.log 2>/dev/null | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.5
  i=$((i + 1))
done
[ -n "$PORT" ] || {
  echo "no exporter port in soak.log; log follows" >&2
  cat soak.log >&2
  exit 1
}
i=0
while [ "$i" -lt 600 ]; do
  grep -q '^soak: [0-9]' soak.log 2>/dev/null && break
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.5
  i=$((i + 1))
done
sleep 1

"$CHECK" --fetch "$PORT:/metrics" > live.prom
"$CHECK" --prom live.prom
grep -q 't2c_tele_latency_ms_bucket{.*} [0-9][0-9]* # {req="' live.prom || {
  echo "live.prom carries no OpenMetrics exemplar on a latency bucket" >&2
  exit 1
}

# The reservoir churns while the soak runs: pull a fresh slowest-request
# id and resolve it immediately, retrying a few times before failing.
RESOLVED=""
for try in 1 2 3 4 5; do
  ID=$("$CHECK" --fetch "$PORT:/exemplars" |
       sed -n 's/.*"requests":\[{"id":\([0-9][0-9]*\).*/\1/p')
  [ -n "$ID" ] || continue
  if "$CHECK" --fetch "$PORT:/requests/$ID" > request.json 2>/dev/null; then
    RESOLVED=yes
    break
  fi
done
[ -n "$RESOLVED" ] || {
  echo "no /exemplars id resolved on /requests/<id>" >&2
  exit 1
}
grep -q '"trail":\[{' request.json || {
  echo "/requests/$ID detail carries no per-op trail" >&2
  cat request.json >&2
  exit 1
}

kill "$CLI_PID" 2>/dev/null || true
wait "$CLI_PID" 2>/dev/null || true
echo "postmortem gate ok: $SEGV_BUNDLE, $STALL_BUNDLE," \
     "exemplar request $ID resolved"
