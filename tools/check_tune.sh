#!/usr/bin/env sh
# End-to-end autotuning acceptance, driven by the `t2c_tune_valid` ctest
# entry:
#   check_tune.sh <t2c_cli> <t2c_json_check> <workdir>
#
# Cold run: t2c_cli --tune full on a fresh cache must benchmark at least
# one problem and write a schema-valid t2c.tune.v1 document. Warm run:
# the identical invocation must resolve every problem from the cache
# (benchmarked=0 — the zero-per-run-overhead guarantee). A corrupted
# cache must degrade to the heuristic with a warning, never a failure.
set -e
CLI="$1"
CHECK="$2"
WORK="$3"
[ -n "$CLI" ] && [ -n "$CHECK" ] && [ -n "$WORK" ] || {
  echo "usage: check_tune.sh <t2c_cli> <t2c_json_check> <workdir>" >&2
  exit 2
}
mkdir -p "$WORK"
cd "$WORK"
rm -f tune.json cold.log warm.log corrupt.log

# Cold: everything is a miss, so the autotuner must run and persist.
"$CLI" --model resnet20 --width 0.25 --epochs 1 --out tune_out \
       --tune full --tune-cache tune.json > cold.log 2>&1 || {
  echo "cold --tune full run failed; log follows" >&2
  cat cold.log >&2
  exit 1
}
grep -q '^tune: mode=full problems=[1-9]' cold.log || {
  echo "cold run reported no tunable problems; log follows" >&2
  cat cold.log >&2
  exit 1
}
grep '^tune: mode=full' cold.log | grep -q 'benchmarked=[1-9]' || {
  echo "cold run benchmarked nothing; log follows" >&2
  cat cold.log >&2
  exit 1
}
[ -f tune.json ] || { echo "cold run wrote no tune.json" >&2; exit 1; }
"$CHECK" --tune-cache tune.json

# Warm: same invocation, cache present — every problem must hit and the
# autotuner must not run at all.
"$CLI" --model resnet20 --width 0.25 --epochs 1 --out tune_out \
       --tune full --tune-cache tune.json > warm.log 2>&1 || {
  echo "warm --tune full run failed; log follows" >&2
  cat warm.log >&2
  exit 1
}
grep '^tune: mode=full' warm.log | grep -q 'benchmarked=0' || {
  echo "warm run re-benchmarked; log follows" >&2
  cat warm.log >&2
  exit 1
}

# Corrupt cache: the run must still succeed, with a warning.
echo 'not json at all {{{' > tune_corrupt.json
"$CLI" --model resnet20 --width 0.25 --epochs 1 --out tune_out \
       --tune heuristic --tune-cache tune_corrupt.json \
       > corrupt.log 2>&1 || {
  echo "corrupt-cache run failed (must degrade, not die); log follows" >&2
  cat corrupt.log >&2
  exit 1
}
grep -q 'ignored' corrupt.log || {
  echo "corrupt cache produced no warning; log follows" >&2
  cat corrupt.log >&2
  exit 1
}
echo "tune ok: cold benchmarked + valid cache, warm benchmarked=0, corrupt degraded"
