#!/usr/bin/env sh
# Perf-regression gate: runs the hand-timed bench binaries into a fresh
# t2c.bench.v1 document and diffs it against the committed baseline with
# t2c_perf_diff. Driven by the `t2c_perf_regress` ctest entry:
#   perf_regress.sh <bench_kernels> <bench_deploy_mem> <t2c_perf_diff> \
#                   <baseline.json> <workdir>
# The gate is soft by default (regressions are reported, exit stays 0)
# because local wall time on shared machines is not trustworthy; set
# T2C_PERF_HARD=1 (CI) to make a regression fail the test.
set -e
KERNELS="$1"
DEPLOY="$2"
DIFF="$3"
BASELINE="$4"
WORK="$5"
[ -n "$KERNELS" ] && [ -n "$DEPLOY" ] && [ -n "$DIFF" ] && \
[ -n "$BASELINE" ] && [ -n "$WORK" ] || {
  echo "usage: perf_regress.sh <bench_kernels> <bench_deploy_mem>" \
       "<t2c_perf_diff> <baseline.json> <workdir>" >&2
  exit 2
}
[ -f "$BASELINE" ] || {
  echo "perf_regress: no baseline at $BASELINE (run 'cmake --build . " \
       "--target bench_regress' and commit BENCH_runtime.json)" >&2
  exit 2
}
mkdir -p "$WORK"
cd "$WORK"
T2C_BENCH_JSON="$WORK/bench_kernels.json" "$KERNELS" \
  > kernels.log 2>&1 || { cat kernels.log >&2; exit 1; }
T2C_BENCH_JSON="$WORK/bench_deploy_mem.json" "$DEPLOY" \
  > deploy.log 2>&1 || { cat deploy.log >&2; exit 1; }
# Same merged shape tools/bench_regress.cmake writes.
{
  printf '{\n  "schema": "t2c.bench.v1",\n  "benches": {\n    "bench_kernels": '
  cat "$WORK/bench_kernels.json"
  printf ',\n    "bench_deploy_mem": '
  cat "$WORK/bench_deploy_mem.json"
  printf '\n  }\n}\n'
} > current.json
if [ "${T2C_PERF_HARD:-0}" != "0" ]; then
  SOFT=""
else
  SOFT="--soft"
fi
exec "$DIFF" $SOFT "$BASELINE" "$WORK/current.json"
