// t2c_perf_diff — noise-aware comparator for two t2c.bench.v1 documents
// (the BENCH_runtime.json files bench_regress writes).
//
//   t2c_perf_diff OLD.json NEW.json [--floor F] [--sigma S] [--cap C]
//                 [--soft] [--markdown PATH] [--selftest]
//
// Per shared row the compared statistic is min-of-reps (the least noisy
// estimate of the true cost; mean_ms is the legacy fallback). The verdict
// window is derived from the run's own variance instead of a fixed
// threshold:
//
//   window = clamp(max(floor,
//                      sigma * cv_old, sigma * cv_new,
//                      sigma * ipc_cv_old, sigma * ipc_cv_new),
//                  floor, cap)
//
// where cv = stddev_ms / mean_ms and ipc_cv (present when the bench ran
// with T2C_BENCH_PMU on the hardware counter tier) is the per-rep IPC
// coefficient of variation — an unstable IPC means the machine moved, not
// the code, so the window widens. delta = new/old - 1 beyond +window is
// `regressed`, beyond -window is `improved`, inside is `noise`. Rows that
// carry a "kernel" tag on both sides and disagree are classified `added`:
// a solver switch (e.g. gemm_i64_tiled -> gemm_i8_fused_avx512, whether
// from a registry reorder or a new tuning-cache winner) is a new
// measurement, not a delta of the old one.
//
// Output is a markdown table (stdout, or --markdown PATH). Exit status: 0
// when nothing regressed, 1 when any row regressed (suppressed by --soft
// for machines where wall time is not trustworthy), 2 on usage or parse
// errors. --selftest runs the classifier against synthetic documents
// (injected 20% slowdown => regressed, small jitter => noise) and needs no
// input files.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/jsonlite.h"

namespace {

using t2c::jsonlite::JsonValue;
using t2c::jsonlite::parse_json;

struct RowStat {
  double stat_ms = 0.0;  ///< min_ms, or mean_ms for legacy rows
  double cv = 0.0;       ///< stddev_ms / mean_ms
  double ipc_cv = 0.0;   ///< 0 when the row carries no PMU data
  std::string kernel;    ///< code-path tag; empty for untagged rows
};

struct Options {
  double floor = 0.05;  ///< minimum relative window (5%)
  double sigma = 4.0;   ///< cv multiplier
  double cap = 0.25;    ///< maximum relative window (25%)
  bool soft = false;
  std::string markdown;
};

struct Verdict {
  std::string key;
  double old_ms = 0.0;
  double new_ms = 0.0;
  double delta = 0.0;   ///< new/old - 1
  double window = 0.0;  ///< relative, symmetric
  std::string klass;    ///< improved | regressed | noise | added | removed
};

double num_or(const JsonValue& row, const char* key, double fallback) {
  if (!row.has(key)) return fallback;
  const JsonValue& v = row.at(key);
  return v.is_number() ? v.number : fallback;
}

/// Flattens one t2c.bench.v1 document into "<bench>/<row>" -> RowStat.
/// Accepts both per-bench forms: {"build_info":...,"rows":[...]} and the
/// legacy bare array.
std::map<std::string, RowStat> load_rows(const JsonValue& doc,
                                         const std::string& label) {
  t2c::check(doc.is_object() && doc.has("benches"),
             label + ": not a t2c.bench.v1 document (no \"benches\")");
  if (doc.has("schema")) {
    t2c::check(doc.at("schema").str == "t2c.bench.v1",
               label + ": unknown schema '" + doc.at("schema").str + "'");
  }
  std::map<std::string, RowStat> out;
  for (const auto& [bench, value] : doc.at("benches").object) {
    const std::vector<JsonValue>* rows = nullptr;
    if (value.is_array()) {
      rows = &value.array;
    } else if (value.is_object() && value.has("rows")) {
      t2c::check(value.at("rows").is_array(),
                 label + ": " + bench + ".rows is not an array");
      rows = &value.at("rows").array;
    } else {
      t2c::fail(label + ": bench '" + bench +
                "' is neither a row array nor an object with \"rows\"");
    }
    for (const JsonValue& row : *rows) {
      t2c::check(row.is_object() && row.has("name"),
                 label + ": " + bench + " row without \"name\"");
      RowStat s;
      const double mean = num_or(row, "mean_ms", 0.0);
      s.stat_ms = num_or(row, "min_ms", mean);
      const double stddev = num_or(row, "stddev_ms", 0.0);
      if (mean > 0.0) s.cv = stddev / mean;
      s.ipc_cv = num_or(row, "ipc_cv", 0.0);
      if (row.has("kernel")) s.kernel = row.at("kernel").str;
      out[bench + "/" + row.at("name").str] = s;
    }
  }
  return out;
}

double window_of(const RowStat& a, const RowStat& b, const Options& opt) {
  double w = opt.floor;
  w = std::max(w, opt.sigma * a.cv);
  w = std::max(w, opt.sigma * b.cv);
  w = std::max(w, opt.sigma * a.ipc_cv);
  w = std::max(w, opt.sigma * b.ipc_cv);
  return std::min(w, opt.cap);
}

std::vector<Verdict> classify(const std::map<std::string, RowStat>& olds,
                              const std::map<std::string, RowStat>& news,
                              const Options& opt) {
  std::vector<Verdict> out;
  for (const auto& [key, o] : olds) {
    Verdict v;
    v.key = key;
    v.old_ms = o.stat_ms;
    const auto it = news.find(key);
    if (it == news.end()) {
      v.klass = "removed";
      out.push_back(std::move(v));
      continue;
    }
    v.new_ms = it->second.stat_ms;
    if (!o.kernel.empty() && !it->second.kernel.empty() &&
        o.kernel != it->second.kernel) {
      // Same row name, different code path: the old timing measured a
      // kernel that no longer runs, so there is nothing to regress
      // against — restart the row's history.
      v.klass = "added";
      out.push_back(std::move(v));
      continue;
    }
    v.window = window_of(o, it->second, opt);
    v.delta = o.stat_ms > 0.0 ? v.new_ms / v.old_ms - 1.0 : 0.0;
    if (v.delta > v.window) {
      v.klass = "regressed";
    } else if (v.delta < -v.window) {
      v.klass = "improved";
    } else {
      v.klass = "noise";
    }
    out.push_back(std::move(v));
  }
  for (const auto& [key, n] : news) {
    if (olds.count(key) != 0U) continue;
    Verdict v;
    v.key = key;
    v.new_ms = n.stat_ms;
    v.klass = "added";
    out.push_back(std::move(v));
  }
  return out;
}

std::string markdown_table(const std::vector<Verdict>& verdicts) {
  std::ostringstream os;
  os << "| bench/row | old ms | new ms | delta | window | verdict |\n";
  os << "|---|---:|---:|---:|---:|---|\n";
  char buf[256];
  for (const Verdict& v : verdicts) {
    const auto cell = [&](double ms) {
      if (ms <= 0.0) return std::string("-");
      std::snprintf(buf, sizeof(buf), "%.3f", ms);
      return std::string(buf);
    };
    const std::string old_cell = cell(v.old_ms);
    const std::string new_cell = cell(v.new_ms);
    if (v.klass == "added" || v.klass == "removed") {
      std::snprintf(buf, sizeof(buf), "| %s | %s | %s | - | - | %s |\n",
                    v.key.c_str(), old_cell.c_str(), new_cell.c_str(),
                    v.klass.c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "| %s | %s | %s | %+.1f%% | ±%.1f%% | %s |\n",
                    v.key.c_str(), old_cell.c_str(), new_cell.c_str(),
                    100.0 * v.delta, 100.0 * v.window, v.klass.c_str());
    }
    os << buf;
  }
  return os.str();
}

int count_class(const std::vector<Verdict>& vs, const char* klass) {
  int n = 0;
  for (const Verdict& v : vs) n += v.klass == klass ? 1 : 0;
  return n;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  t2c::check(is.good(), "cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Synthetic-document classifier check (no input files): the gate must
/// flag a real slowdown and must NOT flag jitter or a machine-state shift.
int selftest(const Options& opt) {
  const auto doc = [](const std::string& rows) {
    return parse_json("{\"schema\":\"t2c.bench.v1\",\"benches\":{\"b\":"
                      "{\"build_info\":{},\"rows\":[" + rows + "]}}}");
  };
  const auto row = [](const char* name, double min_ms, double mean_ms,
                      double stddev_ms, double ipc_cv,
                      const char* kernel = nullptr) {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"reps\":9,\"min_ms\":%.4f,"
                  "\"mean_ms\":%.4f,\"p50_ms\":%.4f,\"p95_ms\":%.4f,"
                  "\"stddev_ms\":%.4f,\"ipc_cv\":%.4f",
                  name, min_ms, mean_ms, mean_ms, mean_ms * 1.1, stddev_ms,
                  ipc_cv);
    std::string out(buf);
    if (kernel != nullptr) {
      out += std::string(",\"kernel\":\"") + kernel + "\"";
    }
    return out + "}";
  };
  // old: five stable rows. new: slow regressed 20%; jitter moved 3%;
  // shifted moved 20% but with wildly unstable IPC (machine, not code);
  // fast improved 30%; switched improved 4x but on a different kernel
  // tag, so its history restarts instead of reading as an improvement.
  const JsonValue olds = doc(row("slow", 10.0, 10.2, 0.05, 0.01) + "," +
                             row("jitter", 5.0, 5.1, 0.04, 0.01) + "," +
                             row("shifted", 8.0, 8.1, 0.05, 0.01) + "," +
                             row("fast", 20.0, 20.3, 0.1, 0.01) + "," +
                             row("switched", 8.0, 8.1, 0.05, 0.01,
                                 "gemm_i64"));
  const JsonValue news = doc(row("slow", 12.0, 12.2, 0.05, 0.01) + "," +
                             row("jitter", 5.15, 5.3, 0.04, 0.01) + "," +
                             row("shifted", 9.6, 9.8, 0.05, 0.08) + "," +
                             row("fast", 14.0, 14.2, 0.1, 0.01) + "," +
                             row("switched", 2.0, 2.1, 0.02, 0.01,
                                 "gemm_i8_fused") + "," +
                             row("brand_new", 1.0, 1.0, 0.01, 0.0));
  const std::vector<Verdict> vs =
      classify(load_rows(olds, "old"), load_rows(news, "new"), opt);
  std::printf("%s", markdown_table(vs).c_str());
  int failures = 0;
  const auto expect = [&](const char* key, const char* klass) {
    for (const Verdict& v : vs) {
      if (v.key != std::string("b/") + key) continue;
      if (v.klass == klass) return;
      std::printf("selftest FAIL: %s classified %s, expected %s\n", key,
                  v.klass.c_str(), klass);
      ++failures;
      return;
    }
    std::printf("selftest FAIL: no verdict for %s\n", key);
    ++failures;
  };
  expect("slow", "regressed");
  expect("jitter", "noise");
  expect("shifted", "noise");
  expect("fast", "improved");
  expect("switched", "added");
  expect("brand_new", "added");
  std::printf(failures == 0 ? "selftest OK (6 cases)\n"
                            : "selftest: %d failure(s)\n",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opt;
    std::vector<std::string> files;
    bool run_selftest = false;
    for (int i = 1; i < argc; ++i) {
      const std::string f = argv[i];
      const auto want = [&]() -> const char* {
        t2c::check(i + 1 < argc, "missing value for " + f);
        return argv[++i];
      };
      if (f == "--floor") opt.floor = std::atof(want());
      else if (f == "--sigma") opt.sigma = std::atof(want());
      else if (f == "--cap") opt.cap = std::atof(want());
      else if (f == "--soft") opt.soft = true;
      else if (f == "--markdown") opt.markdown = want();
      else if (f == "--selftest") run_selftest = true;
      else if (f == "--help") {
        std::puts("usage: t2c_perf_diff OLD.json NEW.json [--floor F]"
                  " [--sigma S] [--cap C] [--soft] [--markdown PATH]"
                  " [--selftest]");
        return 0;
      } else if (!f.empty() && f[0] == '-') {
        t2c::fail("unknown flag '" + f + "' (try --help)");
      } else {
        files.push_back(f);
      }
    }
    t2c::check(opt.floor >= 0.0 && opt.cap >= opt.floor && opt.sigma >= 0.0,
               "need 0 <= floor <= cap and sigma >= 0");
    if (run_selftest) return selftest(opt);
    t2c::check(files.size() == 2,
               "expected exactly OLD.json and NEW.json (try --help)");
    const JsonValue old_doc = parse_json(read_file(files[0]));
    const JsonValue new_doc = parse_json(read_file(files[1]));
    const std::vector<Verdict> vs = classify(load_rows(old_doc, files[0]),
                                             load_rows(new_doc, files[1]),
                                             opt);
    const std::string table = markdown_table(vs);
    if (opt.markdown.empty()) {
      std::printf("%s", table.c_str());
    } else {
      std::ofstream os(opt.markdown);
      t2c::check(os.good(), "cannot write " + opt.markdown);
      os << table;
    }
    const int regressed = count_class(vs, "regressed");
    std::printf("perf diff: %d regressed, %d improved, %d noise, "
                "%d added, %d removed%s\n",
                regressed, count_class(vs, "improved"),
                count_class(vs, "noise"), count_class(vs, "added"),
                count_class(vs, "removed"),
                regressed > 0 && opt.soft ? " (soft gate: exit 0)" : "");
    return regressed > 0 && !opt.soft ? 1 : 0;
  } catch (const t2c::Error& e) {
    std::fprintf(stderr, "t2c_perf_diff: %s\n", e.what());
    return 2;
  }
}
