# Perf-trajectory collector (the `bench_regress` target).
#
# Runs the hand-timed bench binaries with T2C_BENCH_JSON set and merges
# their per-bench documents into one schema'd file at the repo root, so
# every PR can diff runtime numbers against the committed baseline (the
# t2c_perf_diff tool consumes two of these):
#
#   {
#     "schema": "t2c.bench.v1",
#     "benches": {
#       "bench_kernels": {
#         "build_info": {"git_sha":..., "compiler":..., ...},
#         "rows": [{"name":..., "reps":..., "min_ms":..., "mean_ms":...,
#                   "p50_ms":..., "p95_ms":..., "stddev_ms":...}, ...]
#       },
#       "bench_deploy_mem": {...}
#     }
#   }
#
# (Per-bench values were bare row arrays before the min/stddev upgrade;
# t2c_perf_diff still reads that legacy form.)
#
# Invoked in script mode:
#   cmake -DBENCH_KERNELS=<exe> -DBENCH_DEPLOY_MEM=<exe>
#         -DOUT_JSON=<repo>/BENCH_runtime.json -DWORK_DIR=<build>/bench_regress
#         -P tools/bench_regress.cmake

foreach(var BENCH_KERNELS BENCH_DEPLOY_MEM OUT_JSON WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_regress.cmake: ${var} not set")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(benches "")
foreach(entry "bench_kernels|${BENCH_KERNELS}" "bench_deploy_mem|${BENCH_DEPLOY_MEM}")
  string(REPLACE "|" ";" parts "${entry}")
  list(GET parts 0 bench_name)
  list(GET parts 1 bench_exe)
  set(row_json "${WORK_DIR}/${bench_name}.json")
  message(STATUS "bench_regress: running ${bench_name}")
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env "T2C_BENCH_JSON=${row_json}" "${bench_exe}"
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "bench_regress: ${bench_name} failed (${rc})\n${run_out}\n${run_err}")
  endif()
  if(NOT EXISTS "${row_json}")
    message(FATAL_ERROR "bench_regress: ${bench_name} wrote no ${row_json}")
  endif()
  file(READ "${row_json}" rows)
  string(STRIP "${rows}" rows)
  if(benches)
    string(APPEND benches ",\n")
  endif()
  string(APPEND benches "    \"${bench_name}\": ${rows}")
endforeach()

file(WRITE "${OUT_JSON}"
     "{\n  \"schema\": \"t2c.bench.v1\",\n  \"benches\": {\n${benches}\n  }\n}\n")
message(STATUS "bench_regress: wrote ${OUT_JSON}")
