#!/usr/bin/env sh
# Runs t2c_cli with profiling + tracing + metrics JSON output on a small
# model and validates every emitted document with t2c_json_check. The CLI
# also serves the live telemetry plane (--serve-obs 0 --loop N): while the
# soak loop runs, the script scrapes /metrics once over a raw socket and
# validates the Prometheus exposition too. Driven by the
# `t2c_profile_valid` ctest entry:
#   check_profile.sh <t2c_cli> <t2c_json_check> <workdir>
set -e
CLI="$1"
CHECK="$2"
WORK="$3"
[ -n "$CLI" ] && [ -n "$CHECK" ] && [ -n "$WORK" ] || {
  echo "usage: check_profile.sh <t2c_cli> <t2c_json_check> <workdir>" >&2
  exit 2
}
mkdir -p "$WORK"
cd "$WORK"
rm -f cli.log metrics.prom
"$CLI" --model resnet20 --width 0.25 --epochs 1 --threads 4 --out cli_out \
       --profile --profile-json prof.json --trace-json trace.json \
       --metrics-json metrics.json --serve-obs 0 --loop 4000 \
       > cli.log 2>&1 &
CLI_PID=$!

# The exporter prints its (ephemeral) port before training starts; the
# soak marker appears once the deployed graph is taking live traffic.
PORT=""
i=0
while [ "$i" -lt 600 ]; do
  PORT=$(sed -n 's/^obs: serving \/metrics on port \([0-9][0-9]*\)$/\1/p' \
         cli.log 2>/dev/null | head -n 1)
  [ -n "$PORT" ] && break
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.5
  i=$((i + 1))
done
[ -n "$PORT" ] || {
  echo "no exporter port in cli.log; log follows" >&2
  cat cli.log >&2
  exit 1
}
i=0
while [ "$i" -lt 600 ]; do
  grep -q '^soak:' cli.log 2>/dev/null && break
  kill -0 "$CLI_PID" 2>/dev/null || break
  sleep 0.5
  i=$((i + 1))
done

# One mid-run scrape: raw-socket GET (no curl dependency), 200 required,
# body dumped and validated as Prometheus text exposition.
T2C_PROM_DUMP=metrics.prom "$CHECK" --prom-scrape "$PORT"
"$CHECK" --prom metrics.prom

wait "$CLI_PID" || {
  echo "t2c_cli failed; log follows" >&2
  cat cli.log >&2
  exit 1
}
"$CHECK" --trace trace.json --profile prof.json --metrics metrics.json
