#!/usr/bin/env sh
# Runs t2c_cli with profiling + tracing + metrics JSON output on a small
# model and validates every emitted document with t2c_json_check. Driven by
# the `t2c_profile_valid` ctest entry:
#   check_profile.sh <t2c_cli> <t2c_json_check> <workdir>
set -e
CLI="$1"
CHECK="$2"
WORK="$3"
[ -n "$CLI" ] && [ -n "$CHECK" ] && [ -n "$WORK" ] || {
  echo "usage: check_profile.sh <t2c_cli> <t2c_json_check> <workdir>" >&2
  exit 2
}
mkdir -p "$WORK"
cd "$WORK"
"$CLI" --model resnet20 --width 0.25 --epochs 1 --threads 4 --out cli_out \
       --profile --profile-json prof.json --trace-json trace.json \
       --metrics-json metrics.json > cli.log 2>&1 || {
  echo "t2c_cli failed; log follows" >&2
  cat cli.log >&2
  exit 1
}
"$CHECK" --trace trace.json --profile prof.json --metrics metrics.json
